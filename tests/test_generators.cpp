// Property tests for the synthetic graph generators: determinism, size,
// degree structure, and the component signatures each family promises.
#include <gtest/gtest.h>

#include <algorithm>

#include "graph/generators.h"
#include "graph/stats.h"
#include "graph/suite.h"

namespace ecl {
namespace {

TEST(GenGrid, SizeAndDegrees) {
  const Graph g = gen_grid2d(8, 13);
  EXPECT_EQ(g.num_vertices(), 104u);
  // 4-neighbor mesh: m_undirected = r*(c-1) + (r-1)*c
  EXPECT_EQ(g.num_edges(), 2u * (8 * 12 + 7 * 13));
  const auto s = compute_stats(g, "g");
  EXPECT_EQ(s.min_degree, 2u);  // corners
  EXPECT_EQ(s.max_degree, 4u);
  EXPECT_EQ(s.num_components, 1u);
}

TEST(GenGrid, DegenerateSingleRow) {
  const Graph g = gen_grid2d(1, 5);
  EXPECT_EQ(g.num_edges(), 8u);
  EXPECT_EQ(count_components(g), 1u);
}

TEST(GenDelaunay, AverageDegreeNearSix) {
  const auto s = compute_stats(gen_delaunay_like(60, 60), "d");
  EXPECT_EQ(s.num_components, 1u);
  EXPECT_GT(s.avg_degree, 4.5);
  EXPECT_LT(s.avg_degree, 6.5);
}

TEST(GenUniformRandom, Deterministic) {
  const Graph a = gen_uniform_random(1000, 3000, 17);
  const Graph b = gen_uniform_random(1000, 3000, 17);
  ASSERT_EQ(a.num_edges(), b.num_edges());
  EXPECT_TRUE(std::equal(a.adjacency().begin(), a.adjacency().end(),
                         b.adjacency().begin()));
}

TEST(GenUniformRandom, SeedChangesGraph) {
  const Graph a = gen_uniform_random(1000, 3000, 17);
  const Graph b = gen_uniform_random(1000, 3000, 18);
  EXPECT_FALSE(a.num_edges() == b.num_edges() &&
               std::equal(a.adjacency().begin(), a.adjacency().end(),
                          b.adjacency().begin()));
}

TEST(GenRmat, VertexCountIsPowerOfScale) {
  const Graph g = gen_rmat(12, 8, RmatParams{}, 5);
  EXPECT_EQ(g.num_vertices(), 1u << 12);
  EXPECT_GT(g.num_edges(), 0u);
}

TEST(GenRmat, SkewedDegreesAndIsolatedVertices) {
  const auto s = compute_stats(gen_rmat(14, 8, RmatParams{}, 5), "rmat");
  EXPECT_EQ(s.min_degree, 0u);                       // isolated vertices exist
  EXPECT_GT(s.max_degree, 20 * s.avg_degree);        // heavy tail
  EXPECT_GT(s.num_components, 100u);                 // many tiny components
}

TEST(GenRmat, RejectsBadScale) {
  EXPECT_THROW(gen_rmat(0, 8, RmatParams{}, 1), std::invalid_argument);
  EXPECT_THROW(gen_rmat(31, 8, RmatParams{}, 1), std::invalid_argument);
}

TEST(GenKronecker, MoreSkewedThanDefaultRmat) {
  const auto kron = compute_stats(gen_kronecker(13, 16, 5), "kron");
  const auto rmat = compute_stats(gen_rmat(13, 16, RmatParams{}, 5), "rmat");
  EXPECT_GT(kron.max_degree, rmat.max_degree);
}

TEST(GenRoad, LowDegreeGiantComponent) {
  const auto s = compute_stats(gen_road_network(20000, 11), "road");
  EXPECT_EQ(s.num_vertices, 20000u);
  EXPECT_GT(s.avg_degree, 1.5);
  EXPECT_LT(s.avg_degree, 4.5);
  EXPECT_LE(s.max_degree, 8u);
  // Giant component dominates.
  const auto sizes = component_sizes(gen_road_network(20000, 11));
  EXPECT_GT(sizes[0], 15000u);
}

TEST(GenPreferentialAttachment, HeavyTailConnected) {
  const auto s = compute_stats(gen_preferential_attachment(5000, 4, 13), "pa");
  EXPECT_EQ(s.num_components, 1u);  // each vertex links to an earlier one
  EXPECT_GT(s.max_degree, 10 * s.avg_degree);
}

TEST(GenCitation, HasMultipleComponents) {
  const auto s = compute_stats(gen_citation(20000, 4, 0.7, 19), "cit");
  EXPECT_GT(s.num_components, 50u);  // uncited/unciting papers
  EXPECT_EQ(s.min_degree, 0u);
}

TEST(GenWeb, SignatureOfTable2) {
  const auto s = compute_stats(gen_web_graph(20000, 23), "web");
  EXPECT_EQ(s.min_degree, 0u);             // isolated pages
  EXPECT_GT(s.max_degree, 40u);            // hub pages
  EXPECT_GT(s.num_components, 20u);        // crawl fragments
  const auto sizes = component_sizes(gen_web_graph(20000, 23));
  EXPECT_GT(sizes[0], 10000u);             // one giant component
}

TEST(GenSmallWorld, RingDegreeWithoutRewiring) {
  const auto s = compute_stats(gen_small_world(100, 3, 0.0, 1), "sw");
  EXPECT_EQ(s.min_degree, 6u);
  EXPECT_EQ(s.max_degree, 6u);
  EXPECT_EQ(s.num_components, 1u);
}

TEST(GenSmallWorld, RejectsTooLargeK) {
  EXPECT_THROW(gen_small_world(10, 5, 0.1, 1), std::invalid_argument);
}

TEST(Suite, AllEighteenGraphsPresent) {
  EXPECT_EQ(paper_suite().size(), 18u);
  const auto names = suite_names();
  EXPECT_EQ(names.front(), "2d-2e20.sym");
  EXPECT_EQ(names.back(), "USA-road-d.USA");
}

TEST(Suite, SmallScaleBuildsAndMatchesFamilies) {
  // Build every suite graph at 1/64 scale: must be non-empty and valid.
  for (const auto& name : suite_names()) {
    const Graph g = make_suite_graph(name, 1.0 / 64.0);
    EXPECT_GT(g.num_vertices(), 0u) << name;
    const auto offs = g.offsets();
    EXPECT_EQ(offs.back(), g.num_edges()) << name;
  }
}

TEST(Suite, UnknownNameThrows) {
  EXPECT_THROW(make_suite_graph("no_such_graph"), std::invalid_argument);
}

TEST(Suite, ScaleGrowsGraph) {
  const Graph small = make_suite_graph("internet", 0.25);
  const Graph large = make_suite_graph("internet", 1.0);
  EXPECT_LT(small.num_vertices(), large.num_vertices());
}

TEST(Suite, SmallSuiteIsSubsetOfFullSuite) {
  const auto all = suite_names();
  for (const auto& name : small_suite_names()) {
    EXPECT_NE(std::find(all.begin(), all.end(), name), all.end()) << name;
  }
}

}  // namespace
}  // namespace ecl
