// Tests for the spanning-forest extension (the union-find application the
// paper's conclusion proposes).
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "core/spanning_forest.h"
#include "dsu/disjoint_set.h"
#include "graph/generators.h"
#include "graph/stats.h"

namespace ecl {
namespace {

double unit_weight(vertex_t, vertex_t) { return 1.0; }

TEST(SpanningForest, TreeEdgeCountMatchesComponents) {
  for (const auto& g : {gen_grid2d(30, 30), gen_clique_forest(10, 6),
                        gen_uniform_random(2000, 5000, 3), gen_isolated(50)}) {
    const auto forest = spanning_forest(g);
    const vertex_t components = count_components(g);
    EXPECT_EQ(forest.num_trees, components);
    EXPECT_EQ(forest.edges.size(), g.num_vertices() - components);
  }
}

TEST(SpanningForest, EdgesFormAcyclicSpanningStructure) {
  const Graph g = gen_uniform_random(1000, 3000, 9);
  const auto forest = spanning_forest(g);
  DisjointSet check(g.num_vertices());
  for (const auto& e : forest.edges) {
    EXPECT_TRUE(check.unite(e.u, e.v)) << "cycle edge " << e.u << "-" << e.v;
  }
  EXPECT_EQ(check.count(), count_components(g));
}

TEST(Mst, PathGraphTotalWeight) {
  // On a path, the MST is the path itself.
  const Graph g = gen_path(100);
  const auto forest = minimum_spanning_forest(g, unit_weight);
  EXPECT_EQ(forest.edges.size(), 99u);
  EXPECT_DOUBLE_EQ(forest.total_weight, 99.0);
}

TEST(Mst, PicksCheapEdgesFirst) {
  // Complete graph on 4 vertices; weight(u,v) = u + v. The MST must be the
  // star around vertex 0: weights 1, 2, 3.
  const Graph g = gen_complete(4);
  const auto forest = minimum_spanning_forest(
      g, [](vertex_t u, vertex_t v) { return static_cast<double>(u + v); });
  EXPECT_EQ(forest.edges.size(), 3u);
  EXPECT_DOUBLE_EQ(forest.total_weight, 6.0);
  for (const auto& e : forest.edges) {
    EXPECT_EQ(std::min(e.u, e.v), 0u);  // all edges touch vertex 0
  }
}

TEST(Mst, MatchesPrimOnRandomWeightedGraph) {
  const Graph g = gen_uniform_random(200, 800, 17);
  auto weight = [](vertex_t u, vertex_t v) {
    // Deterministic pseudo-random symmetric weight.
    const auto lo = std::min(u, v);
    const auto hi = std::max(u, v);
    return static_cast<double>((lo * 2654435761u + hi * 40503u) % 10007);
  };
  const auto kruskal_forest = minimum_spanning_forest(g, weight);

  // Reference: Prim's algorithm per component (O(n^2) is fine at this size).
  const vertex_t n = g.num_vertices();
  std::vector<bool> in_tree(n, false);
  std::vector<double> best(n, 1e18);
  double prim_total = 0.0;
  const auto comps = reference_components(g);
  std::set<vertex_t> roots(comps.begin(), comps.end());
  for (const vertex_t root : roots) {
    best[root] = 0.0;
    while (true) {
      vertex_t next = kInvalidVertex;
      for (vertex_t v = 0; v < n; ++v) {
        if (!in_tree[v] && comps[v] == root && best[v] < 1e18 &&
            (next == kInvalidVertex || best[v] < best[next])) {
          next = v;
        }
      }
      if (next == kInvalidVertex) break;
      in_tree[next] = true;
      prim_total += best[next];
      for (const vertex_t u : g.neighbors(next)) {
        if (!in_tree[u]) best[u] = std::min(best[u], weight(next, u));
      }
    }
  }
  EXPECT_NEAR(kruskal_forest.total_weight, prim_total, 1e-6);
}

TEST(SpanningForest, EmptyGraph) {
  const auto forest = spanning_forest(Graph());
  EXPECT_TRUE(forest.edges.empty());
  EXPECT_EQ(forest.num_trees, 0u);
}

}  // namespace
}  // namespace ecl
