// Tests for the Boruvka spanning forest on the virtual GPU (the paper
// conclusion's proposed union-find extension), validated against the serial
// Kruskal implementation.
#include <gtest/gtest.h>

#include "core/spanning_forest.h"
#include "core/verify.h"
#include "dsu/disjoint_set.h"
#include "graph/generators.h"
#include "graph/stats.h"
#include "gpusim/mst_gpu.h"

namespace ecl::gpusim {
namespace {

/// Deterministic pseudo-random symmetric edge weight.
double hash_weight(vertex_t u, vertex_t v) {
  const auto lo = std::min(u, v);
  const auto hi = std::max(u, v);
  return static_cast<double>((lo * 2654435761u + hi * 40503u) % 100003) + 1.0;
}

TEST(GpuMst, PathGraphSelectsAllEdges) {
  const Graph g = gen_path(500);
  const auto result = boruvka_mst_gpu(g, titanx_like(), hash_weight);
  EXPECT_EQ(result.edge_ids.size(), 499u);
}

TEST(GpuMst, ForestSizeMatchesComponents) {
  for (const auto& g : {gen_clique_forest(20, 6), gen_uniform_random(3000, 8000, 9),
                        gen_web_graph(4000, 2), gen_isolated(64)}) {
    const auto result = boruvka_mst_gpu(g, titanx_like(), hash_weight);
    const vertex_t components = count_components(g);
    EXPECT_EQ(result.edge_ids.size(), g.num_vertices() - components);
  }
}

TEST(GpuMst, SelectedEdgesFormAcyclicSpanningForest) {
  const Graph g = gen_kronecker(11, 10, 7);
  const auto result = boruvka_mst_gpu(g, titanx_like(), hash_weight);

  // Rebuild the undirected (u < v) edge list to resolve edge ids.
  std::vector<std::pair<vertex_t, vertex_t>> edges;
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    for (const vertex_t u : g.neighbors(v)) {
      if (u < v) edges.emplace_back(u, v);
    }
  }
  DisjointSet check(g.num_vertices());
  for (const std::uint64_t e : result.edge_ids) {
    ASSERT_LT(e, edges.size());
    EXPECT_TRUE(check.unite(edges[e].first, edges[e].second)) << "cycle at edge " << e;
  }
  EXPECT_EQ(check.count(), count_components(g));
}

TEST(GpuMst, TotalWeightMatchesSerialKruskal) {
  for (const auto& g : {gen_grid2d(40, 40), gen_uniform_random(2000, 6000, 13),
                        gen_preferential_attachment(1500, 4, 5)}) {
    const auto gpu = boruvka_mst_gpu(g, titanx_like(), hash_weight);
    const auto cpu = minimum_spanning_forest(g, hash_weight);
    EXPECT_NEAR(gpu.total_weight, cpu.total_weight, 1e-6);
    EXPECT_EQ(gpu.edge_ids.size(), cpu.edges.size());
  }
}

TEST(GpuMst, LabelsMatchConnectedComponents) {
  const Graph g = gen_citation(3000, 4, 0.5, 11);
  const auto result = boruvka_mst_gpu(g, titanx_like(), hash_weight);
  EXPECT_TRUE(same_partition(result.labels, reference_components(g)));
}

TEST(GpuMst, UniformWeightsStillYieldForest) {
  // All-equal weights stress the (weight, edge-id) tie-break.
  const Graph g = gen_complete(60);
  const auto result = boruvka_mst_gpu(g, titanx_like(),
                                      [](vertex_t, vertex_t) { return 1.0; });
  EXPECT_EQ(result.edge_ids.size(), 59u);
  EXPECT_DOUBLE_EQ(result.total_weight, 59.0);
}

TEST(GpuMst, ReportsKernelStats) {
  const Graph g = gen_grid2d(30, 30);
  const auto result = boruvka_mst_gpu(g, titanx_like(), hash_weight);
  EXPECT_GT(result.time_ms, 0.0);
  EXPECT_FALSE(result.kernels.empty());
}

TEST(GpuMst, EmptyGraph) {
  const auto result = boruvka_mst_gpu(Graph(), titanx_like(), hash_weight);
  EXPECT_TRUE(result.edge_ids.empty());
  EXPECT_DOUBLE_EQ(result.total_weight, 0.0);
}

}  // namespace
}  // namespace ecl::gpusim
