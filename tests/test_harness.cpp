// Tests for the benchmark harness: config parsing, suite filtering, the
// normalized ratio tables that drive the figure reproductions, and the
// measurement/run-report plumbing.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/table.h"
#include "harness/bench_harness.h"

namespace ecl::harness {
namespace {

TEST(ParseConfig, Defaults) {
  const char* argv[] = {"bench"};
  const auto cfg = parse_config(1, argv);
  EXPECT_DOUBLE_EQ(cfg.scale, 1.0);
  EXPECT_EQ(cfg.reps, 3);
  EXPECT_TRUE(cfg.graph_filter.empty());
  EXPECT_TRUE(cfg.csv_dir.empty());
}

TEST(ParseConfig, CustomDefaultScale) {
  const char* argv[] = {"bench"};
  EXPECT_DOUBLE_EQ(parse_config(1, argv, 0.25).scale, 0.25);
}

TEST(ParseConfig, ExplicitFlagsOverride) {
  const char* argv[] = {"bench", "--scale=2.5", "--reps=7", "--csv-dir=/tmp/x"};
  const auto cfg = parse_config(4, argv, 0.25);
  EXPECT_DOUBLE_EQ(cfg.scale, 2.5);
  EXPECT_EQ(cfg.reps, 7);
  EXPECT_EQ(cfg.csv_dir, "/tmp/x");
}

TEST(ParseConfig, GraphListParsing) {
  const char* argv[] = {"bench", "--graphs=internet,rmat16.sym"};
  const auto cfg = parse_config(2, argv);
  ASSERT_EQ(cfg.graph_filter.size(), 2u);
  EXPECT_EQ(cfg.graph_filter[0], "internet");
  EXPECT_EQ(cfg.graph_filter[1], "rmat16.sym");
}

TEST(ParseConfig, SmallSelectsReducedSuite) {
  const char* argv[] = {"bench", "--small"};
  const auto cfg = parse_config(2, argv);
  EXPECT_EQ(cfg.graph_filter.size(), 5u);
}

TEST(LoadSuite, FilterRestrictsAndPreservesOrder) {
  BenchConfig cfg;
  cfg.scale = 1.0 / 64.0;
  cfg.graph_filter = {"internet", "2d-2e20.sym"};
  const auto graphs = load_suite(cfg);
  ASSERT_EQ(graphs.size(), 2u);
  EXPECT_EQ(graphs[0].first, "2d-2e20.sym");  // Table 2 order, not filter order
  EXPECT_EQ(graphs[1].first, "internet");
  EXPECT_GT(graphs[0].second.num_vertices(), 0u);
}

TEST(MeasureMs, UsesAtLeastOneRep) {
  BenchConfig cfg;
  cfg.reps = 0;
  int calls = 0;
  (void)measure_ms(cfg, [&] { ++calls; });
  EXPECT_EQ(calls, 1);
}

TEST(ParseConfig, ReportFlag) {
  const char* argv[] = {"bench", "--report=/tmp/r.json"};
  const auto cfg = parse_config(2, argv);
  EXPECT_EQ(cfg.report_path, "/tmp/r.json");
  const char* argv2[] = {"bench"};
  EXPECT_TRUE(parse_config(1, argv2).report_path.empty());
}

TEST(Measure, ExposesMinMedianMaxOverAllReps) {
  BenchConfig cfg;
  cfg.reps = 5;
  int calls = 0;
  const Measurement m = measure(cfg, [&] { ++calls; });
  EXPECT_EQ(calls, 5);
  ASSERT_EQ(m.rep_ms.size(), 5u);
  EXPECT_LE(m.min_ms, m.median_ms);
  EXPECT_LE(m.median_ms, m.max_ms);
  for (const double ms : m.rep_ms) {
    EXPECT_GE(ms, m.min_ms);
    EXPECT_LE(ms, m.max_ms);
  }
}

TEST(MeasureCell, RecordsIntoReportWhenRequested) {
  report().clear();
  BenchConfig cfg;
  cfg.reps = 2;
  cfg.report_path = "unused-but-non-empty.json";
  (void)measure_cell(cfg, "graphX", "codeY", [] {});
  EXPECT_EQ(report().cell_count(), 1u);

  // Without a report path, nothing accumulates.
  report().clear();
  cfg.report_path.clear();
  (void)measure_cell(cfg, "graphX", "codeY", [] {});
  record_cell(cfg, "graphX", "codeZ", {1.0});
  EXPECT_EQ(report().cell_count(), 0u);
}

TEST(Emit, CreatesMissingCsvAndReportDirectories) {
  const auto base =
      std::filesystem::temp_directory_path() / "ecl_harness_emit_test";
  std::filesystem::remove_all(base);

  report().clear();
  BenchConfig cfg;
  cfg.csv_dir = (base / "csv" / "deep").string();
  cfg.report_path = (base / "reports" / "deep" / "run.json").string();
  record_cell(cfg, "g", "c", {1.0, 2.0});

  Table t("caption");
  t.set_header({"Graph", "ms"});
  t.add_row({"g", "1.0"});
  std::ostringstream discard;
  {
    // emit() writes the table to stdout; keep the test output clean.
    testing::internal::CaptureStdout();
    emit(t, cfg, "emit_test");
    testing::internal::GetCapturedStdout();
  }
  (void)discard;

  EXPECT_TRUE(std::filesystem::exists(cfg.csv_dir + "/emit_test.csv"));
  ASSERT_TRUE(std::filesystem::exists(cfg.report_path));
  std::ifstream in(cfg.report_path);
  std::stringstream file;
  file << in.rdbuf();
  const std::string json = file.str();
  EXPECT_NE(json.find("\"bench\":\"emit_test\""), std::string::npos);
  EXPECT_NE(json.find("\"graph\":\"g\""), std::string::npos);
  EXPECT_NE(json.find("\"code\":\"c\""), std::string::npos);
  EXPECT_NE(json.find("\"rep_ms\":[1,2]"), std::string::npos);

  report().clear();
  std::filesystem::remove_all(base);
}

TEST(RatioTable, NormalizesToReference) {
  RatioTable rt("caption", "ref", {"ref", "other"});
  rt.record("g1", "ref", 2.0);
  rt.record("g1", "other", 4.0);
  rt.record("g2", "ref", 10.0);
  rt.record("g2", "other", 5.0);
  const auto gm = rt.geomean("other");
  ASSERT_TRUE(gm.has_value());
  EXPECT_NEAR(*gm, 1.0, 1e-12);  // sqrt(2.0 * 0.5)
  EXPECT_NEAR(*rt.geomean("ref"), 1.0, 1e-12);
}

TEST(RatioTable, HandlesNaCells) {
  RatioTable rt("caption", "ref", {"ref", "crono"});
  rt.record("g1", "ref", 2.0);
  rt.record("g1", "crono", std::nullopt);
  rt.record("g2", "ref", 3.0);
  rt.record("g2", "crono", 6.0);
  const auto gm = rt.geomean("crono");
  ASSERT_TRUE(gm.has_value());
  EXPECT_NEAR(*gm, 2.0, 1e-12);  // only g2 counts

  std::ostringstream os;
  rt.normalized().write_markdown(os);
  EXPECT_NE(os.str().find("n/a"), std::string::npos);
}

TEST(RatioTable, AbsoluteTableKeepsMilliseconds) {
  RatioTable rt("caption", "a", {"a", "b"});
  rt.record("g", "a", 1.25);
  rt.record("g", "b", 123.4);
  std::ostringstream os;
  rt.absolute("abs").write_markdown(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("1.25"), std::string::npos);
  EXPECT_NE(out.find("123.4"), std::string::npos);
}

TEST(RatioTable, GeomeanEmptyWhenNoOverlap) {
  RatioTable rt("caption", "ref", {"ref", "x"});
  rt.record("g1", "ref", 2.0);
  EXPECT_FALSE(rt.geomean("x").has_value());
}

}  // namespace
}  // namespace ecl::harness
