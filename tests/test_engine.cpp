// Direct unit tests of the shared phase templates (core/engine.h): the
// initialization policies of Fig. 7, the per-vertex computation of Fig. 6,
// and the finalization variants of Fig. 9 — on hand-built inputs with
// exactly known outcomes.
#include <gtest/gtest.h>

#include "core/engine.h"
#include "graph/builder.h"

namespace ecl {
namespace {

/// Star around vertex 5: neighbors of 5 are {0,1,2,3,4,6,7} (sorted CSR).
Graph star_around_5() {
  GraphBuilder b(8);
  for (vertex_t v = 0; v < 8; ++v) {
    if (v != 5) b.add_edge(5, v);
  }
  return b.build();
}

TEST(InitialParent, SelfPolicyAlwaysSelf) {
  const Graph g = star_around_5();
  for (vertex_t v = 0; v < 8; ++v) {
    EXPECT_EQ(detail::initial_parent(g, InitPolicy::kSelf, v), v);
  }
}

TEST(InitialParent, MinNeighborPicksGlobalMinimum) {
  const Graph g = star_around_5();
  EXPECT_EQ(detail::initial_parent(g, InitPolicy::kMinNeighbor, 5), 0u);
  // Leaf 3's only neighbor is 5 > 3, so it keeps its own ID.
  EXPECT_EQ(detail::initial_parent(g, InitPolicy::kMinNeighbor, 3), 3u);
  EXPECT_EQ(detail::initial_parent(g, InitPolicy::kMinNeighbor, 7), 5u);
}

TEST(InitialParent, FirstSmallerStopsAtFirstHit) {
  // Vertex 5's sorted adjacency starts at 0, so Init3 finds 0 immediately.
  const Graph g = star_around_5();
  EXPECT_EQ(detail::initial_parent(g, InitPolicy::kFirstSmallerNeighbor, 5), 0u);
  EXPECT_EQ(detail::initial_parent(g, InitPolicy::kFirstSmallerNeighbor, 3), 3u);
  EXPECT_EQ(detail::initial_parent(g, InitPolicy::kFirstSmallerNeighbor, 7), 5u);
}

TEST(InitialParent, FirstSmallerRespectsListOrder) {
  // With reversed (descending) adjacency lists, vertex 5 sees 4 first.
  GraphBuilder b(8);
  for (vertex_t v = 0; v < 8; ++v) {
    if (v != 5) b.add_edge(5, v);
  }
  BuildOptions opts;
  opts.sort_neighbors = false;  // builder reverses the sorted list
  const Graph g = b.build(opts);
  EXPECT_EQ(detail::initial_parent(g, InitPolicy::kFirstSmallerNeighbor, 5), 4u);
  // Init2 is order-independent.
  EXPECT_EQ(detail::initial_parent(g, InitPolicy::kMinNeighbor, 5), 0u);
}

TEST(InitialParent, IsolatedVertexKeepsSelf) {
  const Graph g = build_graph(3, {{0, 1}});
  for (const auto policy : {InitPolicy::kSelf, InitPolicy::kMinNeighbor,
                            InitPolicy::kFirstSmallerNeighbor}) {
    EXPECT_EQ(detail::initial_parent(g, policy, 2), 2u);
  }
}

TEST(ComputeVertex, ProcessesOnlyLowerNeighbors) {
  // Triangle 0-1-2. Processing vertex 0 must do nothing (no neighbor < 0).
  const Graph g = build_graph(3, {{0, 1}, {1, 2}, {0, 2}});
  std::vector<vertex_t> parent{0, 1, 2};
  SerialParentOps ops(parent.data());
  detail::compute_vertex(g, JumpPolicy::kIntermediate, 0, ops);
  EXPECT_EQ(parent, (std::vector<vertex_t>{0, 1, 2}));
  // Processing vertex 2 hooks it (and transitively 1) toward 0.
  detail::compute_vertex(g, JumpPolicy::kIntermediate, 1, ops);
  detail::compute_vertex(g, JumpPolicy::kIntermediate, 2, ops);
  for (vertex_t v = 0; v < 3; ++v) {
    EXPECT_EQ(find_none(v, ops), 0u);
  }
}

TEST(FinalizeVertex, AllVariantsPointDirectlyAtRoot) {
  for (const auto policy : {FinalizePolicy::kIntermediate, FinalizePolicy::kMultiple,
                            FinalizePolicy::kSingle}) {
    // Chain 4 -> 3 -> 2 -> 1 -> 0.
    std::vector<vertex_t> parent{0, 0, 1, 2, 3};
    SerialParentOps ops(parent.data());
    for (vertex_t v = 0; v < 5; ++v) {
      detail::finalize_vertex(policy, v, ops);
    }
    for (vertex_t v = 0; v < 5; ++v) {
      EXPECT_EQ(parent[v], 0u) << "policy " << static_cast<int>(policy) << " vertex " << v;
    }
  }
}

TEST(FinalizeVertex, RootStaysFixed) {
  std::vector<vertex_t> parent{0};
  SerialParentOps ops(parent.data());
  detail::finalize_vertex(FinalizePolicy::kSingle, 0, ops);
  EXPECT_EQ(parent[0], 0u);
}

}  // namespace
}  // namespace ecl
