// Tests for the double-sided worklist of the GPU pipeline (paper §3).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "common/types.h"
#include "gpusim/device.h"
#include "gpusim/spec.h"
#include "gpusim/worklist.h"

namespace ecl::gpusim {
namespace {

TEST(Worklist, StartsEmpty) {
  Device dev(titanx_like());
  DoubleSidedWorklist wl(dev, 100);
  EXPECT_EQ(wl.top_count(), 0u);
  EXPECT_EQ(wl.bottom_count(), 0u);
  EXPECT_EQ(wl.bottom_begin(), 100u);
  EXPECT_FALSE(wl.overflowed());
  EXPECT_EQ(wl.capacity(), 100u);
}

TEST(Worklist, TopAndBottomFillOpposingEnds) {
  Device dev(titanx_like());
  DoubleSidedWorklist wl(dev, 10);
  dev.launch("push", 1, 1, [&](const ThreadCtx& ctx) {
    EXPECT_EQ(wl.push_top(ctx, 100), 0u);
    EXPECT_EQ(wl.push_top(ctx, 101), 1u);
    EXPECT_EQ(wl.push_bottom(ctx, 200), 9u);
    EXPECT_EQ(wl.push_bottom(ctx, 201), 8u);
  });
  EXPECT_EQ(wl.top_count(), 2u);
  EXPECT_EQ(wl.bottom_count(), 2u);
  EXPECT_EQ(wl.bottom_begin(), 8u);
  EXPECT_FALSE(wl.overflowed());

  dev.launch("verify", 1, 1, [&](const ThreadCtx& ctx) {
    EXPECT_EQ(wl.read(ctx, 0), 100u);
    EXPECT_EQ(wl.read(ctx, 1), 101u);
    EXPECT_EQ(wl.read(ctx, 9), 200u);
    EXPECT_EQ(wl.read(ctx, 8), 201u);
  });
}

TEST(Worklist, ManyThreadsPushUniqueSlots) {
  Device dev(titanx_like());
  constexpr vertex_t kN = 2048;
  DoubleSidedWorklist wl(dev, kN);
  dev.launch("push", dev.blocks_for(kN, 256), 256, [&](const ThreadCtx& ctx) {
    for (std::uint64_t i = ctx.global_id(); i < kN; i += ctx.grid_size()) {
      if (i % 3 == 0) {
        wl.push_bottom(ctx, static_cast<vertex_t>(i));
      } else {
        wl.push_top(ctx, static_cast<vertex_t>(i));
      }
    }
  });
  EXPECT_EQ(wl.top_count() + wl.bottom_count(), kN);
  EXPECT_FALSE(wl.overflowed());

  // Every pushed value appears exactly once.
  std::set<vertex_t> seen;
  dev.launch("drain", 1, 1, [&](const ThreadCtx& ctx) {
    for (vertex_t i = 0; i < wl.top_count(); ++i) seen.insert(wl.read(ctx, i));
    for (vertex_t i = wl.bottom_begin(); i < kN; ++i) seen.insert(wl.read(ctx, i));
  });
  EXPECT_EQ(seen.size(), kN);
}

TEST(Worklist, ExactCapacityFitsWithoutOverflow) {
  // One entry per vertex with capacity n can never overflow (paper §3).
  Device dev(titanx_like());
  DoubleSidedWorklist wl(dev, 4);
  dev.launch("push", 1, 1, [&](const ThreadCtx& ctx) {
    wl.push_top(ctx, 1);
    wl.push_top(ctx, 2);
    wl.push_bottom(ctx, 3);
    wl.push_bottom(ctx, 4);
  });
  EXPECT_FALSE(wl.overflowed());
  EXPECT_EQ(wl.top_count(), 2u);
  EXPECT_EQ(wl.bottom_count(), 2u);
}

TEST(Worklist, OverflowDetected) {
  Device dev(titanx_like());
  DoubleSidedWorklist wl(dev, 4);
  dev.launch("push", 1, 1, [&](const ThreadCtx& ctx) {
    wl.push_top(ctx, 1);
    wl.push_top(ctx, 2);
    wl.push_bottom(ctx, 3);
    wl.push_bottom(ctx, 4);
    wl.push_top(ctx, 5);  // collides with the bottom side's slots
  });
  EXPECT_TRUE(wl.overflowed());
}

}  // namespace
}  // namespace ecl::gpusim
