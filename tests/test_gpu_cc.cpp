// Correctness tests for every GPU CC implementation on the virtual device:
// all five codes (ECL-CC, Groute, Gunrock, IrGL, Soman) must reproduce the
// reference partition on the full graph fixture, on both device configs.
#include <gtest/gtest.h>

#include "core/verify.h"
#include "graph/stats.h"
#include "gpusim/gpu_cc.h"
#include "test_util.h"

namespace ecl::gpusim {
namespace {

using ecl::testing::correctness_graphs;

class GpuCodeTest : public ::testing::TestWithParam<int> {
 protected:
  static const GpuCode& code() {
    return gpu_codes()[static_cast<std::size_t>(GetParam())];
  }
};

TEST_P(GpuCodeTest, MatchesReferenceOnAllGraphs) {
  for (const auto& [name, g] : correctness_graphs()) {
    const auto result = code().run(g, titanx_like());
    const auto reference = reference_components(g);
    ASSERT_EQ(result.labels.size(), reference.size()) << code().name << " on " << name;
    EXPECT_TRUE(same_partition(result.labels, reference)) << code().name << " on " << name;
  }
}

TEST_P(GpuCodeTest, WorksOnK40Config) {
  const Graph g = gen_kronecker(11, 12, 99);
  const auto result = code().run(g, k40_like());
  EXPECT_TRUE(same_partition(result.labels, reference_components(g))) << code().name;
}

TEST_P(GpuCodeTest, ReportsTimeAndTraffic) {
  const Graph g = gen_grid2d(64, 64);
  const auto result = code().run(g, titanx_like());
  EXPECT_GT(result.time_ms, 0.0) << code().name;
  EXPECT_FALSE(result.kernels.empty()) << code().name;
  EXPECT_GT(result.memory.reads, 0u) << code().name;
}

std::string gpu_code_name(const ::testing::TestParamInfo<int>& inf) {
  std::string name = gpu_codes()[static_cast<std::size_t>(inf.param)].name;
  for (char& c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c))) c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(AllGpuCodes, GpuCodeTest,
                         ::testing::Range(0, static_cast<int>(gpu_codes().size())),
                         gpu_code_name);

// ---------------------------------------------------------------------------
// ECL-CC pipeline specifics

TEST(EclCcGpu, LabelsAreCanonicalMinima) {
  const Graph g = gen_clique_forest(12, 8);
  const auto result = ecl_cc_gpu(g, titanx_like());
  EXPECT_EQ(result.labels, reference_components(g));
}

TEST(EclCcGpu, FiveKernelsLaunchedOnMixedDegreeGraph) {
  // A graph with low-, mid- and high-degree vertices must exercise all
  // three compute kernels.
  GraphBuilder b(2000);
  for (vertex_t v = 0; v + 1 < 1000; ++v) b.add_edge(v, v + 1);          // degree <= 2
  for (vertex_t v = 1000; v < 1100; ++v) b.add_edge(1000, v);            // mid degree
  for (vertex_t v = 1100; v < 2000; ++v) b.add_edge(1100, v);            // high degree
  const Graph g = b.build();
  const auto result = ecl_cc_gpu(g, titanx_like());
  EXPECT_TRUE(same_partition(result.labels, reference_components(g)));
  EXPECT_EQ(result.time_by_kernel.size(), 5u);
  EXPECT_TRUE(result.time_by_kernel.contains("compute 2"));
  EXPECT_TRUE(result.time_by_kernel.contains("compute 3"));
}

TEST(EclCcGpu, LowDegreeGraphSkipsWorklistKernels) {
  const Graph g = gen_grid2d(50, 50);  // max degree 4
  const auto result = ecl_cc_gpu(g, titanx_like());
  EXPECT_FALSE(result.time_by_kernel.contains("compute 2"));
  EXPECT_FALSE(result.time_by_kernel.contains("compute 3"));
  EXPECT_TRUE(same_partition(result.labels, reference_components(g)));
}

TEST(EclCcGpu, AllPolicyCombinationsCorrect) {
  const Graph g = gen_kronecker(10, 12, 5);
  const auto reference = reference_components(g);
  for (const auto init : {InitPolicy::kSelf, InitPolicy::kMinNeighbor,
                          InitPolicy::kFirstSmallerNeighbor}) {
    for (const auto jump : {JumpPolicy::kMultiple, JumpPolicy::kSingle, JumpPolicy::kNone,
                            JumpPolicy::kIntermediate}) {
      for (const auto fini : {FinalizePolicy::kIntermediate, FinalizePolicy::kMultiple,
                              FinalizePolicy::kSingle}) {
        GpuEclOptions opts;
        opts.init = init;
        opts.jump = jump;
        opts.finalize = fini;
        const auto result = ecl_cc_gpu(g, titanx_like(), opts);
        ASSERT_TRUE(same_partition(result.labels, reference))
            << "init=" << static_cast<int>(init) << " jump=" << static_cast<int>(jump)
            << " fini=" << static_cast<int>(fini);
      }
    }
  }
}

TEST(EclCcGpu, ThresholdVariationsStayCorrect) {
  // The paper notes the 16/352 thresholds can vary widely without hurting
  // correctness or much performance (§3).
  const Graph g = gen_preferential_attachment(3000, 8, 21);
  const auto reference = reference_components(g);
  for (const vertex_t t1 : {vertex_t{4}, vertex_t{16}, vertex_t{64}}) {
    for (const vertex_t t2 : {vertex_t{128}, vertex_t{352}, vertex_t{1024}}) {
      GpuEclOptions opts;
      opts.thread_degree_limit = t1;
      opts.warp_degree_limit = t2;
      const auto result = ecl_cc_gpu(g, titanx_like(), opts);
      ASSERT_TRUE(same_partition(result.labels, reference)) << t1 << "/" << t2;
    }
  }
}

TEST(EclCcGpu, DeterministicAcrossRuns) {
  const Graph g = gen_web_graph(4000, 3);
  const auto a = ecl_cc_gpu(g, titanx_like());
  const auto b = ecl_cc_gpu(g, titanx_like());
  EXPECT_EQ(a.labels, b.labels);
  EXPECT_DOUBLE_EQ(a.time_ms, b.time_ms);
  EXPECT_EQ(a.memory.l2_reads, b.memory.l2_reads);
}

// ---------------------------------------------------------------------------
// Relative behaviour that the paper's figures rely on.

TEST(GpuComparison, EclIsFastestOnRepresentativeGraph) {
  // Fig. 11: ECL-CC beats the other four codes on most graphs. Use a
  // mid-size Kronecker graph (skewed degrees) as the representative input.
  const Graph g = gen_kronecker(13, 16, 7);
  const double ecl = ecl_cc_gpu(g, titanx_like()).time_ms;
  EXPECT_LT(ecl, soman_gpu(g, titanx_like()).time_ms);
  EXPECT_LT(ecl, gunrock_gpu(g, titanx_like()).time_ms);
  EXPECT_LT(ecl, irgl_gpu(g, titanx_like()).time_ms);
  EXPECT_LT(ecl, groute_gpu(g, titanx_like()).time_ms);
}

TEST(GpuComparison, NoJumpingSlowerThanIntermediate) {
  // Fig. 8 direction: Jump3 (no compression) must lose badly on a
  // long-diameter graph.
  const Graph g = gen_road_network(20000, 9);
  GpuEclOptions none;
  none.jump = JumpPolicy::kNone;
  const double t_none = ecl_cc_gpu(g, titanx_like(), none).time_ms;
  const double t_inter = ecl_cc_gpu(g, titanx_like()).time_ms;
  EXPECT_GT(t_none, t_inter);
}

TEST(GpuComparison, K40SlowerThanTitanX) {
  const Graph g = gen_kronecker(12, 16, 31);
  EXPECT_GT(ecl_cc_gpu(g, k40_like()).time_ms, ecl_cc_gpu(g, titanx_like()).time_ms);
}

}  // namespace
}  // namespace ecl::gpusim
