// Ablation for the §5.3 observation that the smallest inputs do not scale
// to many OpenMP threads ("10 threads result in the lowest runtime on the
// smallest inputs"): sweeps the ECL-CComp thread count over a mix of small
// and large suite graphs.
#include <omp.h>

#include "common/table.h"
#include "core/ecl_cc.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  auto cfg = harness::parse_config(argc, argv);
  if (cfg.graph_filter.empty()) {
    cfg.graph_filter = {"internet", "rmat16.sym", "USA-road-d.NY",  // small
                        "cit-Patents", "europe_osm"};               // large
  }

  // Thread counts beyond the core count exercise oversubscription overhead
  // (this host has few cores; the paper's point is the overhead trend).
  const std::vector<int> thread_counts = {1, 2, 4, 8, 16};

  Table t("Ablation: ECL-CComp runtime (ms) vs OpenMP thread count (host has " +
          std::to_string(omp_get_max_threads()) + " hardware thread(s))");
  std::vector<std::string> header{"Graph"};
  for (const int tc : thread_counts) header.push_back(std::to_string(tc) + " thr");
  t.set_header(std::move(header));

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    std::vector<std::string> row{name};
    for (const int tc : thread_counts) {
      EclOptions opts;
      opts.num_threads = tc;
      const double ms = harness::measure_cell(cfg, name, std::to_string(tc) + " thr",
                                              [&] { (void)ecl_cc_omp(g, opts); });
      row.push_back(Table::fmt(ms, 2));
    }
    t.add_row(std::move(row));
  }
  harness::emit(t, cfg, "ablation_threads");
  return 0;
}
