// Reproduces Fig. 12 + Table 6: the five GPU codes on the simulated K40
// (older Kepler-class configuration: 15 SMs, smaller L2, lower clock) —
// normalized to ECL-CC and absolute.
#include <cstdio>

#include "core/verify.h"
#include "graph/stats.h"
#include "gpusim/gpu_cc.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.5);

  std::vector<std::string> names;
  for (const auto& code : gpusim::gpu_codes()) names.push_back(code.name);
  harness::RatioTable ratios(
      "Fig. 12: K40 (simulated) runtime relative to ECL-CC (higher is worse)", "ECL-CC",
      names);

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    const auto reference = reference_components(g);
    for (const auto& code : gpusim::gpu_codes()) {
      const auto result = code.run(g, gpusim::k40_like());
      if (!same_partition(result.labels, reference)) {
        std::fprintf(stderr, "VERIFICATION FAILED: %s on %s\n", code.name.c_str(),
                     name.c_str());
        return 1;
      }
      ratios.record(name, code.name, result.time_ms);
      harness::record_cell(cfg, name, code.name, {result.time_ms});
    }
  }
  harness::emit(ratios.normalized(), cfg, "fig12_gpu_k40");
  harness::emit(
      ratios.absolute("Table 6: absolute modeled runtimes (ms) on the simulated K40"),
      cfg, "table6_gpu_k40_abs");
  return 0;
}
