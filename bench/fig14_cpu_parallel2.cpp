// Reproduces Fig. 14 + Table 8: the parallel CPU comparison on the paper's
// second (older, 12-thread) CPU. We do not have a second host, so this
// configuration is emulated by running with fewer OpenMP threads — the
// dominant difference between the paper's two CPU systems for these codes
// (dual 10-core with SMT = 40 threads vs dual 6-core = 12 threads). The
// substitution is recorded in DESIGN.md/EXPERIMENTS.md.
#include <algorithm>
#include <cstdio>
#include <omp.h>

#include "baselines/registry.h"
#include "core/verify.h"
#include "graph/stats.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv);
  // 12/40 of the first system's threads, mirroring the paper's X5690 : E5 ratio.
  const int threads = std::max(1, (omp_get_max_threads() * 12) / 40);
  std::printf("running with %d OpenMP thread(s) (reduced-thread config)\n\n", threads);

  std::vector<std::string> names;
  for (const auto& code : baselines::parallel_cpu_codes()) names.push_back(code.name);
  harness::RatioTable ratios(
      "Fig. 14: parallel CPU runtime relative to ECL-CComp, reduced-thread "
      "configuration (higher is worse)",
      "ECL-CComp", names);

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    const auto reference = reference_components(g);
    for (const auto& code : baselines::parallel_cpu_codes()) {
      if (!code.supports(g)) {
        ratios.record(name, code.name, std::nullopt);
        continue;
      }
      const auto runner = code.prepare(g, threads);
      std::vector<vertex_t> labels;
      const double ms = harness::measure_cell(cfg, name, code.name, [&] { labels = runner(); });
      if (!same_partition(labels, reference)) {
        std::fprintf(stderr, "VERIFICATION FAILED: %s on %s\n", code.name.c_str(),
                     name.c_str());
        return 1;
      }
      ratios.record(name, code.name, ms);
    }
  }
  harness::emit(ratios.normalized(), cfg, "fig14_cpu_parallel2");
  harness::emit(ratios.absolute(
                    "Table 8: absolute parallel runtimes (ms), reduced-thread config"),
                cfg, "table8_cpu_parallel2_abs");
  return 0;
}
