// Reproduces Table 4: average and maximum parent-path lengths observed
// during the CC computation (instrumented finds, intermediate pointer
// jumping). As in the paper, europe_osm and the road graphs stand out with
// much longer paths than the rest.
#include "common/table.h"
#include "core/ecl_cc.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.5);

  Table t("Table 4: observed path lengths during the CC computation "
          "(intermediate pointer jumping)");
  t.set_header({"Graph name", "Average path length", "Maximum path length"});

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    const auto report = ecl_cc_path_lengths(g);
    // The paper counts the hops of each traversal including the first load;
    // the recorder counts pointer-chase iterations, so add one for parity.
    t.add_row({name, Table::fmt(report.average_length + 1.0, 2),
               Table::fmt_count(report.maximum_length + 1)});
  }
  harness::emit(t, cfg, "table4_pathlen");
  return 0;
}
