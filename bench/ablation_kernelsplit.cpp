// Ablation for the paper's central GPU design decision (§3): splitting the
// computation over three kernels at thread / warp / thread-block
// granularity "to keep thread divergence and other forms of load imbalance
// at a minimum". Compares the published 3-kernel pipeline against degenerate
// configurations on the simulated Titan X (which models SIMT lockstep, so
// a high-degree vertex processed by a single thread stalls its whole warp).
//
//   thread-only : every vertex handled at thread granularity (no worklist)
//   warp-heavy  : only degree > 4 goes to the warp kernel, none to block
//   3-kernel    : the published 16/352 configuration (reference, 1.0)
#include <limits>

#include "common/table.h"
#include "gpusim/gpu_cc.h"
#include "graph/suite.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.5);
  if (cfg.graph_filter.empty()) {
    // Skewed-degree graphs show the effect; grids barely care.
    cfg.graph_filter = {"kron_g500-logn21", "rmat22.sym", "soc-LiveJournal1",
                        "uk-2002", "2d-2e20.sym", "europe_osm"};
  }

  struct Config {
    const char* name;
    vertex_t thread_limit;
    vertex_t warp_limit;
  };
  const std::vector<Config> configs = {
      {"thread-only", std::numeric_limits<vertex_t>::max(),
       std::numeric_limits<vertex_t>::max()},
      {"warp-heavy", 4, std::numeric_limits<vertex_t>::max()},
      {"3-kernel 16/352", 16, 352},
  };

  Table t("Ablation: kernel-granularity split (runtime relative to the published "
          "3-kernel 16/352 pipeline; simulated Titan X with SIMT divergence)");
  std::vector<std::string> header{"Graph"};
  for (const auto& c : configs) header.push_back(c.name);
  t.set_header(std::move(header));

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    gpusim::GpuEclOptions published;
    const double base = gpusim::ecl_cc_gpu(g, gpusim::titanx_like(), published).time_ms;
    std::vector<std::string> row{name};
    for (const auto& c : configs) {
      gpusim::GpuEclOptions opts;
      opts.thread_degree_limit = c.thread_limit;
      opts.warp_degree_limit = c.warp_limit;
      const double ms = gpusim::ecl_cc_gpu(g, gpusim::titanx_like(), opts).time_ms;
      row.push_back(Table::fmt(ms / base, 2));
    }
    t.add_row(std::move(row));
  }
  harness::emit(t, cfg, "ablation_kernelsplit");
  return 0;
}
