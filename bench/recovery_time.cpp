// recovery_time — restart-to-ready vs ingest history, with and without
// checkpoints (ISSUE 4 acceptance: bounded crash recovery).
//
// For each history size H (base edges x 1, 2, 5, 10) and each durability
// mode (wal-only, wal+checkpoint) the bench:
//
//   1. builds a ConnectivityService in a fresh directory, streams H random
//      edges through submit(), compacts, and (checkpoint mode) writes a
//      checkpoint, then stops;
//   2. times the *restart*: constructing a new service on the same on-disk
//      state, i.e. checkpoint load + WAL tail replay (+ the synchronous
//      initial compaction the no-checkpoint path needs). Ready means
//      queries answer from a snapshot covering every acked edge.
//
// With checkpoints the restart cost is O(n + tail) and stays flat as H
// grows; without them it replays and re-solves the whole history, growing
// linearly. --report= writes the cells as JSON (cell graph = "history_<H>",
// code = mode, rep_ms = restart times) for the CI artifact.
//
//   $ recovery_time --vertices=200000 --base-edges=200000 --reps=3 \
//       --report=recovery_time.json
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/timer.h"
#include "obs/report.h"
#include "svc/service.h"

namespace {

using ecl::svc::Admission;
using ecl::svc::ConnectivityService;
using ecl::svc::ServiceOptions;

struct ModeResult {
  double restart_ms = 0;
  std::uint64_t watermark = 0;
  std::uint64_t wal_bytes = 0;
};

ServiceOptions make_opts(const std::string& dir, bool checkpoints) {
  ServiceOptions opts;
  opts.wal_path = dir + "/wal";
  opts.wal.fsync_policy = ecl::svc::FsyncPolicy::kNone;  // measuring recovery, not ingest
  opts.wal_segment_bytes = 1ull << 20;
  if (checkpoints) {
    opts.checkpoint_path = dir + "/ckpt";
    opts.checkpoint_interval_ms = 0;  // explicit checkpoint_now() only
  }
  return opts;
}

void ingest_history(ConnectivityService& svc, ecl::vertex_t n, std::uint64_t edges,
                    std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::uint32_t> pick(0, n - 1);
  std::vector<ecl::Edge> batch;
  const std::size_t batch_size = 1000;
  for (std::uint64_t i = 0; i < edges; ++i) {
    batch.emplace_back(pick(rng), pick(rng));
    if (batch.size() == batch_size || i + 1 == edges) {
      while (svc.submit(batch) == Admission::kShed) {
        usleep(500);  // bounded queue: wait out backpressure
      }
      batch.clear();
    }
  }
  (void)svc.compact_now();
}

ModeResult run_mode(const std::string& dir, ecl::vertex_t n, std::uint64_t edges,
                    bool checkpoints) {
  {
    ConnectivityService svc(n, make_opts(dir, checkpoints));
    ingest_history(svc, n, edges, /*seed=*/42);
    if (checkpoints && !svc.checkpoint_now()) {
      std::fprintf(stderr, "error: checkpoint_now failed\n");
      std::exit(1);
    }
    svc.stop();
  }
  ModeResult r;
  ecl::Timer t;
  ConnectivityService revived(n, make_opts(dir, checkpoints));
  r.restart_ms = t.millis();
  const auto stats = revived.stats();
  r.watermark = stats.watermark;
  r.wal_bytes = stats.wal_bytes;
  if (stats.watermark < edges) {
    std::fprintf(stderr, "error: revived watermark %llu < history %llu\n",
                 static_cast<unsigned long long>(stats.watermark),
                 static_cast<unsigned long long>(edges));
    std::exit(1);
  }
  revived.stop();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  ecl::CliArgs args(argc, argv);
  const auto n = static_cast<ecl::vertex_t>(args.get_int("vertices", 200000));
  const auto base = static_cast<std::uint64_t>(args.get_int("base-edges", 200000));
  const int reps = static_cast<int>(args.get_int("reps", 3));
  const std::string report_file = args.get("report", "");
  for (const auto& flag : args.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", flag.c_str());
  }

  const std::uint64_t factors[] = {1, 2, 5, 10};
  std::printf("%-14s %-10s %12s %14s %12s\n", "history", "mode", "restart_ms",
              "watermark", "wal_bytes");
  for (const std::uint64_t f : factors) {
    const std::uint64_t edges = base * f;
    for (const bool ckpt : {false, true}) {
      const char* mode = ckpt ? "wal+ckpt" : "wal-only";
      std::vector<double> rep_ms;
      ModeResult last;
      for (int rep = 0; rep < reps; ++rep) {
        char tmpl[] = "/tmp/ecl_recovery_XXXXXX";
        if (::mkdtemp(tmpl) == nullptr) {
          std::fprintf(stderr, "error: mkdtemp failed\n");
          return 1;
        }
        const std::string dir = tmpl;
        last = run_mode(dir, n, edges, ckpt);
        rep_ms.push_back(last.restart_ms);
        std::system(("rm -rf " + dir).c_str());
      }
      std::printf("%-14llu %-10s %12.2f %14llu %12llu\n",
                  static_cast<unsigned long long>(edges), mode, rep_ms.back(),
                  static_cast<unsigned long long>(last.watermark),
                  static_cast<unsigned long long>(last.wal_bytes));
      std::fflush(stdout);
      ecl::obs::run_report().add_cell("history_" + std::to_string(edges), mode,
                                      rep_ms);
    }
  }

  if (!report_file.empty()) {
    ecl::obs::run_report().set_bench_name("recovery_time");
    ecl::obs::run_report().set_config(static_cast<double>(base), reps);
    if (!ecl::obs::run_report().write_file(report_file)) {
      std::fprintf(stderr, "error: cannot write report to %s\n", report_file.c_str());
      return 1;
    }
  }
  return 0;
}
