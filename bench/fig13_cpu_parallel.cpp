// Reproduces Fig. 13 + Table 7: the seven parallel CPU codes (ECL-CComp,
// Ligra+ BFSCC, Ligra+ Comp, CRONO, ndHybrid, Multistep, Galois) on the
// host's cores — wall-clock medians, normalized to ECL-CComp and absolute.
// CRONO prints n/a where its n x dmax matrix exceeds the memory limit,
// exactly as in the paper's tables.
#include <cstdio>
#include <omp.h>

#include "baselines/registry.h"
#include "core/verify.h"
#include "graph/stats.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv);
  const int threads = omp_get_max_threads();
  std::printf("running with %d OpenMP thread(s)\n\n", threads);

  std::vector<std::string> names;
  for (const auto& code : baselines::parallel_cpu_codes()) names.push_back(code.name);
  harness::RatioTable ratios(
      "Fig. 13: parallel CPU runtime relative to ECL-CComp (higher is worse)",
      "ECL-CComp", names);

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    const auto reference = reference_components(g);
    for (const auto& code : baselines::parallel_cpu_codes()) {
      if (!code.supports(g)) {
        ratios.record(name, code.name, std::nullopt);
        continue;
      }
      const auto runner = code.prepare(g, threads);
      std::vector<vertex_t> labels;
      const double ms = harness::measure_cell(cfg, name, code.name, [&] { labels = runner(); });
      if (!same_partition(labels, reference)) {
        std::fprintf(stderr, "VERIFICATION FAILED: %s on %s\n", code.name.c_str(),
                     name.c_str());
        return 1;
      }
      ratios.record(name, code.name, ms);
    }
  }
  harness::emit(ratios.normalized(), cfg, "fig13_cpu_parallel");
  harness::emit(ratios.absolute("Table 7: absolute parallel runtimes (ms) on this host"),
                cfg, "table7_cpu_parallel_abs");
  return 0;
}
