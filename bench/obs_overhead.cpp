// Overhead check for the ecl::obs record sites (docs/OBSERVABILITY.md).
//
// This translation unit is compiled into TWO executables: obs_overhead_on
// (default build, metrics + span record sites live) and obs_overhead_off
// (compiled with ECL_OBS_DISABLED, every record site a no-op). Both compile
// src/core/ecl_cc.cpp directly instead of linking ecl_core so the flag
// reaches the algorithm's record sites; the obs classes themselves are
// flag-invariant, so mixing with the normal ecl_obs library is ODR-safe.
//
// scripts/check_obs_overhead.py runs both binaries and asserts that the
// instrumented build's ECL-CC median stays within the acceptance threshold
// of the disabled build, and that both produce identical label checksums.
#include <cstdint>
#include <cstdio>
#include <vector>

#include "common/stats.h"
#include "common/timer.h"
#include "core/ecl_cc.h"
#include "graph/suite.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.5);
  const auto names = small_suite_names();

  // FNV-1a over every label of every graph: any behavioural difference
  // between the instrumented and compiled-out builds shows up here.
  std::uint64_t checksum = 14695981039346656037ULL;
  std::vector<double> totals;  // per-rep total ms across the whole small suite

  std::vector<Graph> graphs;
  for (const auto& name : names) graphs.push_back(make_suite_graph(name, cfg.scale));

  // Timed with the serial code (ECL-CCser): it exercises the same record
  // sites (phase spans, ComputeStats find/hook accounting, registry flush)
  // as the OpenMP port but without scheduler jitter, which would otherwise
  // swamp a 5% threshold. The OpenMP port is still run once per rep so its
  // record sites execute and its labels enter the checksum.
  const int reps = std::max(3, cfg.reps);
  for (int r = 0; r < reps; ++r) {
    Timer t;
    for (const auto& g : graphs) {
      const auto labels = ecl_cc_serial(g);
      if (r == 0) {
        for (const vertex_t l : labels) {
          checksum = (checksum ^ l) * 1099511628211ULL;
        }
      }
    }
    totals.push_back(t.millis());
    for (const auto& g : graphs) {
      const auto labels = ecl_cc_omp(g);
      if (r == 0) {
        for (const vertex_t l : labels) {
          checksum = (checksum ^ l) * 1099511628211ULL;
        }
      }
    }
  }

#if defined(ECL_OBS_DISABLED)
  std::printf("obs=disabled\n");
#else
  std::printf("obs=enabled\n");
#endif
  std::printf("median_ms=%.6f\n", median(totals));
  std::printf("labels_checksum=%016llx\n", static_cast<unsigned long long>(checksum));
  return 0;
}
