// Overhead check for the ecl::obs record sites (docs/OBSERVABILITY.md).
//
// This translation unit is compiled into TWO executables: obs_overhead_on
// (default build, metrics + span record sites live) and obs_overhead_off
// (compiled with ECL_OBS_DISABLED, every record site a no-op). Both compile
// src/core/ecl_cc.cpp directly instead of linking ecl_core so the flag
// reaches the algorithm's record sites; the obs classes themselves are
// flag-invariant, so mixing with the normal ecl_obs library is ODR-safe.
//
// scripts/check_obs_overhead.py runs both binaries and asserts that the
// instrumented build's ECL-CC median stays within the acceptance threshold
// of the disabled build, and that both produce identical label checksums.
//
// --exporter additionally runs the timed loop with the full live-telemetry
// stack hot: the metrics exporter thread sampling the registry on a fast
// cadence plus the tracer recording spans. The <=5% budget must hold with
// both enabled (the obs_overhead_exporter_check ctest). In the
// ECL_OBS_DISABLED build the flag is accepted and ignored, because the
// checker passes identical extra args to both binaries.
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <string>
#include <string_view>
#include <system_error>
#include <vector>

#include "common/stats.h"
#include "common/timer.h"
#include "core/ecl_cc.h"
#include "graph/suite.h"
#include "harness/bench_harness.h"
#include "obs/exporter.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  using namespace ecl;
  // Strip --exporter before the harness parse so it isn't warned about as
  // unknown; both builds accept it, only the instrumented one acts on it.
  bool with_exporter = false;
  std::vector<const char*> filtered;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--exporter") {
      with_exporter = true;
      continue;
    }
    filtered.push_back(argv[i]);
  }
  const auto cfg = harness::parse_config(static_cast<int>(filtered.size()),
                                         filtered.data(), /*default_scale=*/0.5);
  const auto names = small_suite_names();

#if defined(ECL_OBS_DISABLED)
  (void)with_exporter;  // record sites are compiled out; nothing to exercise
#else
  obs::ExporterOptions eopts;
  eopts.port = 0;                  // ephemeral; nothing scrapes it, the cost
  eopts.sample_interval_ms = 100;  // under test is sampling + thread noise
  obs::MetricsExporter exporter(eopts);
  std::string trace_path;
  if (with_exporter) {
    std::string err;
    if (!exporter.start(&err)) {
      std::fprintf(stderr, "error: cannot start exporter: %s\n", err.c_str());
      return 1;
    }
    trace_path = (std::filesystem::temp_directory_path() /
                  "ecl_obs_overhead_trace.json").string();
    if (!obs::Tracer::instance().start(trace_path)) {
      std::fprintf(stderr, "error: cannot start tracer\n");
      return 1;
    }
  }
#endif

  // FNV-1a over every label of every graph: any behavioural difference
  // between the instrumented and compiled-out builds shows up here.
  std::uint64_t checksum = 14695981039346656037ULL;
  std::vector<double> totals;  // per-rep total ms across the whole small suite

  std::vector<Graph> graphs;
  for (const auto& name : names) graphs.push_back(make_suite_graph(name, cfg.scale));

  // Timed with the serial code (ECL-CCser): it exercises the same record
  // sites (phase spans, ComputeStats find/hook accounting, registry flush)
  // as the OpenMP port but without scheduler jitter, which would otherwise
  // swamp a 5% threshold. The OpenMP port is still run once per rep so its
  // record sites execute and its labels enter the checksum.
  const int reps = std::max(3, cfg.reps);
  for (int r = 0; r < reps; ++r) {
    Timer t;
    for (const auto& g : graphs) {
      const auto labels = ecl_cc_serial(g);
      if (r == 0) {
        for (const vertex_t l : labels) {
          checksum = (checksum ^ l) * 1099511628211ULL;
        }
      }
    }
    totals.push_back(t.millis());
    for (const auto& g : graphs) {
      const auto labels = ecl_cc_omp(g);
      if (r == 0) {
        for (const vertex_t l : labels) {
          checksum = (checksum ^ l) * 1099511628211ULL;
        }
      }
    }
  }

#if defined(ECL_OBS_DISABLED)
  std::printf("obs=disabled\n");
#else
  if (with_exporter) {
    exporter.stop();
    obs::Tracer::instance().stop();
    std::error_code ec;
    std::filesystem::remove(trace_path, ec);
  }
  std::printf("obs=enabled\n");
  std::printf("exporter=%s\n", with_exporter ? "on" : "off");
#endif
  std::printf("median_ms=%.6f\n", median(totals));
  std::printf("labels_checksum=%016llx\n", static_cast<unsigned long long>(checksum));
  return 0;
}
