// Ablation for the §3 claim: "These thresholds [16 and 352] were determined
// experimentally. Varying them by quite a bit does not significantly affect
// the performance." Sweeps the thread/warp degree limits of the GPU
// pipeline on the reduced suite and reports modeled runtimes relative to
// the published 16/352 configuration.
#include "common/table.h"
#include "gpusim/gpu_cc.h"
#include "graph/suite.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.5);
  if (cfg.graph_filter.empty()) cfg.graph_filter = small_suite_names();

  const std::vector<std::pair<vertex_t, vertex_t>> limits = {
      {4, 352}, {8, 352}, {16, 352}, {32, 352}, {64, 352},
      {16, 128}, {16, 704}, {16, 1024},
  };

  Table t("Ablation: GPU kernel degree thresholds (runtime relative to the "
          "published 16/352 configuration)");
  std::vector<std::string> header{"Graph"};
  for (const auto& [t1, t2] : limits) {
    header.push_back(std::to_string(t1) + "/" + std::to_string(t2));
  }
  t.set_header(std::move(header));

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    gpusim::GpuEclOptions base;
    const double base_ms = gpusim::ecl_cc_gpu(g, gpusim::titanx_like(), base).time_ms;
    std::vector<std::string> row{name};
    for (const auto& [t1, t2] : limits) {
      gpusim::GpuEclOptions opts;
      opts.thread_degree_limit = t1;
      opts.warp_degree_limit = t2;
      const double ms = gpusim::ecl_cc_gpu(g, gpusim::titanx_like(), opts).time_ms;
      row.push_back(Table::fmt(ms / base_ms, 2));
    }
    t.add_row(std::move(row));
  }
  harness::emit(t, cfg, "ablation_thresholds");
  return 0;
}
