// Reproduces Fig. 17: geometric-mean runtime of every code across the
// suite, normalized to ECL-CC on the (simulated) Titan X.
//
// Domain caveat, stated up front: GPU runtimes come from the simulator's
// cycle model, CPU runtimes are wall-clock on this host, so the GPU-vs-CPU
// gap mixes a modeled and a measured quantity (the within-GPU and
// within-CPU orderings do not). The paper measured everything on real
// hardware; see EXPERIMENTS.md for the comparison.
#include <cstdio>
#include <map>
#include <omp.h>

#include "baselines/registry.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/verify.h"
#include "graph/stats.h"
#include "gpusim/gpu_cc.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.5);
  const int threads = omp_get_max_threads();

  // Per-code per-graph runtimes; ratios vs the anchor computed per graph.
  std::map<std::string, std::vector<double>> ratios;  // code -> ratio per graph
  std::vector<std::string> order;                     // display order

  auto note = [&order](const std::string& name) {
    if (std::find(order.begin(), order.end(), name) == order.end()) order.push_back(name);
  };

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    const double anchor = gpusim::ecl_cc_gpu(g, gpusim::titanx_like()).time_ms;
    if (anchor <= 0.0) continue;

    for (const auto& code : gpusim::gpu_codes()) {
      const std::string label = code.name + " (GPU)";
      note(label);
      ratios[label].push_back(code.run(g, gpusim::titanx_like()).time_ms / anchor);
    }
    for (const auto& code : baselines::parallel_cpu_codes()) {
      if (!code.supports(g)) continue;
      const std::string label = code.name + " (par CPU)";
      note(label);
      const auto runner = code.prepare(g, threads);
      const double ms = harness::measure_cell(cfg, name, label, [&] { (void)runner(); });
      ratios[label].push_back(ms / anchor);
    }
    for (const auto& code : baselines::serial_cpu_codes()) {
      const std::string label = code.name + " (ser CPU)";
      note(label);
      const auto runner = code.prepare(g, 1);
      const double ms = harness::measure_cell(cfg, name, label, [&] { (void)runner(); });
      ratios[label].push_back(ms / anchor);
    }
  }

  Table t("Fig. 17: geometric-mean runtime across devices relative to ECL-CC on "
          "the simulated Titan X (GPU values modeled, CPU values measured)");
  t.set_header({"Code", "Geomean slowdown vs ECL-CC (GPU)"});
  for (const auto& label : order) {
    t.add_row({label, Table::fmt(geometric_mean(ratios[label]), 1)});
  }
  harness::emit(t, cfg, "fig17_cross_device");
  return 0;
}
