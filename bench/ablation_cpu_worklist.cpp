// Ablation for the paper's §3 CPU design decision: the OpenMP port "only
// has a single computation function and requires no worklist". Compares the
// published single-loop ECL-CComp against a GPU-style degree-bucketed
// variant; the guided schedule is expected to absorb the load imbalance
// that the GPU needs three kernels for.
#include "common/table.h"
#include "core/ecl_cc.h"
#include "graph/suite.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  auto cfg = harness::parse_config(argc, argv);
  if (cfg.graph_filter.empty()) {
    cfg.graph_filter = {"kron_g500-logn21", "rmat22.sym", "soc-LiveJournal1",
                        "uk-2002", "2d-2e20.sym", "europe_osm"};
  }

  Table t("Ablation: ECL-CComp single guided loop vs GPU-style degree buckets "
          "(runtime in ms; ratio > 1 means the bucketed variant is slower)");
  t.set_header({"Graph", "single loop ms", "bucketed ms", "ratio"});

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    const double plain =
        harness::measure_cell(cfg, name, "single loop", [&] { (void)ecl_cc_omp(g); });
    const double bucketed = harness::measure_cell(cfg, name, "bucketed",
                                                  [&] { (void)ecl_cc_omp_bucketed(g); });
    t.add_row({name, Table::fmt(plain, 2), Table::fmt(bucketed, 2),
               Table::fmt(bucketed / plain, 2)});
  }
  harness::emit(t, cfg, "ablation_cpu_worklist");
  return 0;
}
