// Ablation for the Ligra+ trade-off the paper describes in §2: a compressed
// graph representation shrinks the memory footprint ("fit larger graphs
// into the available memory") at the cost of on-the-fly decoding. Reports
// compression ratio and ECL-CCser runtime on plain vs compressed CSR.
#include "common/table.h"
#include "core/compressed_cc.h"
#include "core/ecl_cc.h"
#include "graph/compressed.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.5);

  Table t("Ablation: Ligra+-style compressed CSR vs plain CSR "
          "(adjacency memory and serial ECL-CC runtime)");
  t.set_header({"Graph", "plain MB", "compressed MB", "ratio", "plain ms",
                "compressed ms", "slowdown"});

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    const auto cg = CompressedGraph::compress(g);
    const double plain_mb = static_cast<double>(g.memory_bytes()) / (1 << 20);
    const double comp_mb = static_cast<double>(cg.memory_bytes()) / (1 << 20);

    const double plain_ms =
        harness::measure_cell(cfg, name, "plain", [&] { (void)ecl_cc_serial(g); });
    const double comp_ms =
        harness::measure_cell(cfg, name, "compressed", [&] { (void)ecl_cc_serial(cg); });

    t.add_row({name, Table::fmt(plain_mb, 2), Table::fmt(comp_mb, 2),
               Table::fmt(comp_mb / plain_mb, 2), Table::fmt(plain_ms, 2),
               Table::fmt(comp_ms, 2), Table::fmt(comp_ms / plain_ms, 2)});
  }
  harness::emit(t, cfg, "ablation_compression");
  return 0;
}
