// Overhead check for the ecl::fault injection points (docs/ROBUSTNESS.md).
//
// This translation unit is compiled into TWO executables: fault_overhead_on
// (default build, every fault point a relaxed atomic load while disarmed)
// and fault_overhead_off (ECL_FAULT_DISABLED, every point a compile-time
// constant). Both compile src/svc/{service,net,wal}.cpp directly instead of
// linking ecl_svc so the flag reaches the service's fault points; the fault
// Registry class itself is flag-invariant, so mixing with the normal
// ecl_fault library is ODR-safe.
//
// The workload walks the three fault-point-bearing hot paths: ingest
// (svc.ingest.worker, svc.wal.append per batch), fresh connectivity queries
// (no points — the read path must stay free), and socketpair frame echo
// (svc.net.read / svc.net.write per I/O call). scripts/check_obs_overhead.py
// gates the instrumented build at +5% (plus a 2 ms absolute epsilon) and
// requires identical checksums from both builds.
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/stats.h"
#include "common/timer.h"
#include "svc/net.h"
#include "svc/service.h"

int main(int argc, char** argv) {
  using namespace ecl;
  CliArgs args(argc, argv);
  const double scale = args.get_double("scale", 0.5);
  const int reps = std::max(3, static_cast<int>(args.get_int("reps", 5)));

  const auto vertices = static_cast<vertex_t>(4096.0 * scale) + 64;
  const auto batches = static_cast<std::size_t>(256.0 * scale) + 16;
  const auto queries = static_cast<std::size_t>(20000.0 * scale);
  const auto frames = static_cast<std::size_t>(20000.0 * scale);

  std::uint64_t checksum = 14695981039346656037ULL;  // FNV-1a
  const auto fold = [&checksum](std::uint64_t x) {
    checksum = (checksum ^ x) * 1099511628211ULL;
  };
  std::vector<double> totals;

  const std::string wal_path =
      "/tmp/ecl_fault_overhead_" + std::to_string(::getpid()) + ".wal";

  for (int r = 0; r < reps; ++r) {
    std::remove(wal_path.c_str());
    svc::ServiceOptions opts;
    opts.wal_path = wal_path;  // svc.wal.append runs on every submit
    opts.wal.fsync_policy = svc::FsyncPolicy::kNone;
    svc::ConnectivityService service(vertices, opts);

    int pair[2] = {-1, -1};
    if (::socketpair(AF_UNIX, SOCK_STREAM, 0, pair) != 0) {
      std::fprintf(stderr, "socketpair failed\n");
      return 1;
    }
    std::vector<std::uint8_t> frame = {64, 0, 0, 0};  // u32 len = 64
    frame.resize(4 + 64, 0xab);
    std::vector<std::uint8_t> payload;

    // Deterministic edge/query stream (same for both builds, every rep).
    std::uint64_t rng = 0x9E3779B97F4A7C15ULL;
    const auto next = [&rng] {
      rng ^= rng << 13;
      rng ^= rng >> 7;
      rng ^= rng << 17;
      return rng;
    };

    Timer t;
    for (std::size_t b = 0; b < batches; ++b) {
      svc::ConnectivityService::EdgeBatch batch;
      batch.reserve(64);
      for (int e = 0; e < 64; ++e) {
        batch.emplace_back(static_cast<vertex_t>(next() % vertices),
                           static_cast<vertex_t>(next() % vertices));
      }
      while (service.submit(batch) == svc::Admission::kShed) {
        service.flush();  // closed loop: drain instead of dropping work
      }
    }
    service.flush();
    for (std::size_t q = 0; q < queries; ++q) {
      const auto u = static_cast<vertex_t>(next() % vertices);
      const auto v = static_cast<vertex_t>(next() % vertices);
      fold(service.connected(u, v, svc::ReadMode::kFresh) ? 1 : 0);
    }
    for (std::size_t f = 0; f < frames; ++f) {
      if (!svc::net::write_frame(pair[0], frame) ||
          !svc::net::read_frame(pair[1], payload)) {
        std::fprintf(stderr, "frame echo failed\n");
        return 1;
      }
      fold(payload.size());
    }
    totals.push_back(t.millis());

    ::close(pair[0]);
    ::close(pair[1]);
    service.stop();
    std::remove(wal_path.c_str());
  }

#if defined(ECL_FAULT_DISABLED)
  std::printf("fault=disabled\n");
#else
  std::printf("fault=enabled\n");
#endif
  std::printf("median_ms=%.6f\n", median(totals));
  std::printf("labels_checksum=%016llx\n", static_cast<unsigned long long>(checksum));
  return 0;
}
