// Reproduces Fig. 7: total ECL-CC runtime on the (simulated) Titan X with
// the three initialization-kernel variants, normalized to Init3 (the
// published choice). Values above 1.0 mean slower than ECL-CC.
#include "core/ecl_cc.h"
#include "gpusim/gpu_cc.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.5);

  const std::vector<std::pair<std::string, InitPolicy>> variants = {
      {"Init1", InitPolicy::kSelf},
      {"Init2", InitPolicy::kMinNeighbor},
      {"Init3 (ECL-CC)", InitPolicy::kFirstSmallerNeighbor},
  };

  harness::RatioTable ratios(
      "Fig. 7: relative runtime with different initialization kernels on the "
      "simulated Titan X (normalized to Init3; higher is worse)",
      "Init3 (ECL-CC)", {"Init1", "Init2", "Init3 (ECL-CC)"});

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    for (const auto& [label, policy] : variants) {
      gpusim::GpuEclOptions opts;
      opts.init = policy;
      const auto result = gpusim::ecl_cc_gpu(g, gpusim::titanx_like(), opts);
      ratios.record(name, label, result.time_ms);
    }
  }
  harness::emit(ratios.normalized(), cfg, "fig07_init");
  return 0;
}
