// Reproduces Table 3: whole-application L2-cache read and write accesses of
// Jump1 (multiple), Jump2 (single) and Jump3 (no pointer jumping) relative
// to Jump4 (intermediate, ECL-CC), plus the reads-per-write ratios quoted
// in §5.1 — all measured by the simulated memory hierarchy.
#include <iostream>
#include <map>

#include "common/stats.h"
#include "common/table.h"
#include "gpusim/gpu_cc.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.25);

  const std::vector<std::pair<std::string, JumpPolicy>> variants = {
      {"Jump1", JumpPolicy::kMultiple},
      {"Jump2", JumpPolicy::kSingle},
      {"Jump3", JumpPolicy::kNone},
      {"Jump4", JumpPolicy::kIntermediate},
  };

  Table t("Table 3: L2 cache read and write accesses relative to Jump4 "
          "(simulated Titan X)");
  t.set_header({"Graph name", "rd Jump1", "rd Jump2", "rd Jump3", "wr Jump1", "wr Jump2",
                "wr Jump3"});

  std::map<std::string, std::vector<double>> read_ratios;
  std::map<std::string, std::vector<double>> write_ratios;
  std::map<std::string, std::vector<double>> rw_ratios;  // reads per write, absolute

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    std::map<std::string, gpusim::MemoryCounters> mem;
    for (const auto& [label, policy] : variants) {
      gpusim::GpuEclOptions opts;
      opts.jump = policy;
      mem[label] = gpusim::ecl_cc_gpu(g, gpusim::titanx_like(), opts).memory;
      rw_ratios[label].push_back(static_cast<double>(mem[label].l2_reads) /
                                 static_cast<double>(std::max<std::uint64_t>(
                                     1, mem[label].l2_writes)));
    }
    const auto& base = mem["Jump4"];
    // Clamp both sides to >= 1 access: tiny graphs can produce zero counts,
    // which would otherwise zero out the geometric mean.
    const auto ratio = [](std::uint64_t a, std::uint64_t b) {
      return static_cast<double>(std::max<std::uint64_t>(1, a)) /
             static_cast<double>(std::max<std::uint64_t>(1, b));
    };
    std::vector<std::string> row{name};
    for (const char* j : {"Jump1", "Jump2", "Jump3"}) {
      const double r = ratio(mem[j].l2_reads, base.l2_reads);
      read_ratios[j].push_back(r);
      row.push_back(Table::fmt(r, 2));
    }
    for (const char* j : {"Jump1", "Jump2", "Jump3"}) {
      const double w = ratio(mem[j].l2_writes, base.l2_writes);
      write_ratios[j].push_back(w);
      row.push_back(Table::fmt(w, 2));
    }
    t.add_row(std::move(row));
  }

  std::vector<std::string> footer{"Geometric Mean"};
  for (const char* j : {"Jump1", "Jump2", "Jump3"}) {
    footer.push_back(Table::fmt(geometric_mean(read_ratios[j]), 2));
  }
  for (const char* j : {"Jump1", "Jump2", "Jump3"}) {
    footer.push_back(Table::fmt(geometric_mean(write_ratios[j]), 2));
  }
  t.add_row(std::move(footer));
  harness::emit(t, cfg, "table3_l2");

  std::cout << "L2 reads per L2 write (average across graphs; paper reports Jump1 3.02, "
               "Jump2 2.78, Jump3 42.5, Jump4 8.82):\n";
  for (const auto& [label, ratios] : rw_ratios) {
    std::cout << "  " << label << ": " << Table::fmt(geometric_mean(ratios), 2) << "\n";
  }
  return 0;
}
