// Extension benchmark for the paper's conclusion: "[intermediate pointer
// jumping] should be able to accelerate other GPU algorithms that are based
// on union find, such as Kruskal's algorithm for finding the minimum
// spanning tree of a graph." Runs the Boruvka spanning forest on the
// simulated Titan X with each pointer-jumping flavour and reports runtimes
// relative to intermediate jumping.
#include "common/table.h"
#include "gpusim/mst_gpu.h"
#include "graph/suite.h"
#include "harness/bench_harness.h"

namespace {

double hash_weight(ecl::vertex_t u, ecl::vertex_t v) {
  const auto lo = std::min(u, v);
  const auto hi = std::max(u, v);
  return static_cast<double>((lo * 2654435761u + hi * 40503u) % 100003) + 1.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecl;
  auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.25);
  if (cfg.graph_filter.empty()) cfg.graph_filter = small_suite_names();

  const std::vector<std::pair<std::string, JumpPolicy>> variants = {
      {"Jump1", JumpPolicy::kMultiple},
      {"Jump2", JumpPolicy::kSingle},
      {"Jump3", JumpPolicy::kNone},
      {"Jump4 (default)", JumpPolicy::kIntermediate},
  };

  harness::RatioTable ratios(
      "Extension: Boruvka MST on the simulated Titan X with each "
      "pointer-jumping flavour (relative to intermediate jumping)",
      "Jump4 (default)", {"Jump1", "Jump2", "Jump3", "Jump4 (default)"});

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    for (const auto& [label, jump] : variants) {
      const auto result = gpusim::boruvka_mst_gpu(g, gpusim::titanx_like(), hash_weight, jump);
      ratios.record(name, label, result.time_ms);
    }
  }
  harness::emit(ratios.normalized(), cfg, "extension_mst");
  return 0;
}
