// Reproduces Fig. 11 + Table 5: runtimes of the five GPU codes (ECL-CC,
// Groute, Gunrock, IrGL, Soman) on the simulated Titan X — normalized to
// ECL-CC (Fig. 11, higher is worse) and absolute in milliseconds (Table 5).
// Runtimes are the simulator's modeled kernel times; transfers are excluded
// per the paper's methodology (§4). Every code's labeling is verified
// against the serial reference before its time is reported.
#include <cstdio>

#include "core/verify.h"
#include "graph/stats.h"
#include "gpusim/gpu_cc.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.5);

  std::vector<std::string> names;
  for (const auto& code : gpusim::gpu_codes()) names.push_back(code.name);
  harness::RatioTable ratios(
      "Fig. 11: Titan X (simulated) runtime relative to ECL-CC (higher is worse)",
      "ECL-CC", names);

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    const auto reference = reference_components(g);
    for (const auto& code : gpusim::gpu_codes()) {
      const auto result = code.run(g, gpusim::titanx_like());
      if (!same_partition(result.labels, reference)) {
        std::fprintf(stderr, "VERIFICATION FAILED: %s on %s\n", code.name.c_str(),
                     name.c_str());
        return 1;
      }
      ratios.record(name, code.name, result.time_ms);
      harness::record_cell(cfg, name, code.name, {result.time_ms});
    }
  }
  harness::emit(ratios.normalized(), cfg, "fig11_gpu_titanx");
  harness::emit(ratios.absolute(
                    "Table 5: absolute modeled runtimes (ms) on the simulated Titan X"),
                cfg, "table5_gpu_titanx_abs");
  return 0;
}
