// Reproduces Fig. 10: distribution of the ECL-CC runtime among the five
// CUDA kernels (initialization, compute 1/2/3, finalization) on the
// simulated Titan X, as percentages per graph plus the average.
#include <array>

#include "common/stats.h"
#include "common/table.h"
#include "gpusim/gpu_cc.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.5);

  const std::array<const char*, 5> kernels = {"initialization", "compute 1", "compute 2",
                                              "compute 3", "finalization"};

  Table t("Fig. 10: ECL-CC runtime distribution among the five kernels on the "
          "simulated Titan X (percent of total)");
  t.set_header({"Graph", "initialization", "compute 1", "compute 2", "compute 3",
                "finalization"});

  std::array<std::vector<double>, 5> shares;
  for (const auto& [name, g] : harness::load_suite(cfg)) {
    const auto result = gpusim::ecl_cc_gpu(g, gpusim::titanx_like());
    std::vector<std::string> row{name};
    for (std::size_t k = 0; k < kernels.size(); ++k) {
      const auto it = result.time_by_kernel.find(kernels[k]);
      const double ms = it == result.time_by_kernel.end() ? 0.0 : it->second;
      const double pct = result.time_ms > 0 ? 100.0 * ms / result.time_ms : 0.0;
      shares[k].push_back(pct);
      row.push_back(Table::fmt(pct, 1) + "%");
    }
    t.add_row(std::move(row));
  }

  std::vector<std::string> footer{"average"};
  for (std::size_t k = 0; k < kernels.size(); ++k) {
    footer.push_back(Table::fmt(mean(shares[k]), 1) + "%");
  }
  t.add_row(std::move(footer));
  harness::emit(t, cfg, "fig10_breakdown");
  return 0;
}
