// google-benchmark microbenchmarks of the union-find primitives and the
// phase kernels: the per-operation costs behind the paper-level results.
#include <benchmark/benchmark.h>

#include "core/ecl_cc.h"
#include "dsu/disjoint_set.h"
#include "dsu/rank_dsu.h"
#include "dsu/find.h"
#include "dsu/hook.h"
#include "graph/generators.h"

namespace {

using namespace ecl;

/// Worst-case chain: parent[i] = i - 1.
std::vector<vertex_t> chain(vertex_t n) {
  std::vector<vertex_t> parent(n);
  parent[0] = 0;
  for (vertex_t v = 1; v < n; ++v) parent[v] = v - 1;
  return parent;
}

void BM_FindIntermediate(benchmark::State& state) {
  const auto n = static_cast<vertex_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto parent = chain(n);
    state.ResumeTiming();
    SerialParentOps ops(parent.data());
    for (vertex_t v = n; v > 0; --v) {
      benchmark::DoNotOptimize(find_intermediate(v - 1, ops));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FindIntermediate)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_FindSingle(benchmark::State& state) {
  const auto n = static_cast<vertex_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto parent = chain(n);
    state.ResumeTiming();
    SerialParentOps ops(parent.data());
    for (vertex_t v = n; v > 0; --v) {
      benchmark::DoNotOptimize(find_single(v - 1, ops));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FindSingle)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_FindMultiple(benchmark::State& state) {
  const auto n = static_cast<vertex_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto parent = chain(n);
    state.ResumeTiming();
    SerialParentOps ops(parent.data());
    for (vertex_t v = n; v > 0; --v) {
      benchmark::DoNotOptimize(find_multiple(v - 1, ops));
    }
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_FindMultiple)->Arg(1 << 10)->Arg(1 << 14)->Arg(1 << 18);

void BM_DisjointSetUnite(benchmark::State& state) {
  const auto n = static_cast<vertex_t>(state.range(0));
  for (auto _ : state) {
    DisjointSet ds(n);
    for (vertex_t v = 0; v + 1 < n; ++v) ds.unite(v, v + 1);
    benchmark::DoNotOptimize(ds.count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_DisjointSetUnite)->Arg(1 << 12)->Arg(1 << 16);

void BM_ConcurrentDsuUnite(benchmark::State& state) {
  const auto n = static_cast<vertex_t>(state.range(0));
  for (auto _ : state) {
    ConcurrentDisjointSet ds(n);
    for (vertex_t v = 0; v + 1 < n; ++v) ds.unite(v, v + 1);
    ds.flatten();
    benchmark::DoNotOptimize(ds.count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_ConcurrentDsuUnite)->Arg(1 << 12)->Arg(1 << 16);

void BM_RandomPriorityDsuUnite(benchmark::State& state) {
  // Linking-strategy comparison vs BM_ConcurrentDsuUnite (ECL min-linking)
  // on the sequential-chain adversarial case.
  const auto n = static_cast<vertex_t>(state.range(0));
  for (auto _ : state) {
    RandomPriorityDisjointSet ds(n);
    for (vertex_t v = 0; v + 1 < n; ++v) ds.unite(v, v + 1);
    benchmark::DoNotOptimize(ds.count());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_RandomPriorityDsuUnite)->Arg(1 << 12)->Arg(1 << 16);

void BM_EclSerialOnGrid(benchmark::State& state) {
  const auto side = static_cast<vertex_t>(state.range(0));
  const Graph g = gen_grid2d(side, side);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecl_cc_serial(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_EclSerialOnGrid)->Arg(64)->Arg(256);

void BM_EclSerialOnKron(benchmark::State& state) {
  const Graph g = gen_kronecker(static_cast<int>(state.range(0)), 16, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ecl_cc_serial(g));
  }
  state.SetItemsProcessed(state.iterations() * g.num_edges());
}
BENCHMARK(BM_EclSerialOnKron)->Arg(12)->Arg(15);

void BM_GraphGeneration(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(gen_rmat(static_cast<int>(state.range(0)), 8, RmatParams{}, 3));
  }
}
BENCHMARK(BM_GraphGeneration)->Arg(12)->Arg(15);

}  // namespace

BENCHMARK_MAIN();
