// Reproduces Fig. 8: total ECL-CC runtime on the (simulated) Titan X with
// the four pointer-jumping variants, normalized to Jump4 (intermediate
// pointer jumping, the published choice). The paper's cut-off bar (Jump3 on
// europe_osm, 254x) appears here too — Jump3 is the variant without any
// path compression. Defaults to scale 0.25 because Jump3 is quadratic-ish
// on long-diameter graphs, exactly as the paper shows.
#include "core/ecl_cc.h"
#include "gpusim/gpu_cc.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.25);

  const std::vector<std::pair<std::string, JumpPolicy>> variants = {
      {"Jump1", JumpPolicy::kMultiple},
      {"Jump2", JumpPolicy::kSingle},
      {"Jump3", JumpPolicy::kNone},
      {"Jump4 (ECL-CC)", JumpPolicy::kIntermediate},
  };

  harness::RatioTable ratios(
      "Fig. 8: relative runtime with different pointer-jumping versions on "
      "the simulated Titan X (normalized to Jump4; higher is worse)",
      "Jump4 (ECL-CC)", {"Jump1", "Jump2", "Jump3", "Jump4 (ECL-CC)"});

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    for (const auto& [label, policy] : variants) {
      gpusim::GpuEclOptions opts;
      opts.jump = policy;
      const auto result = gpusim::ecl_cc_gpu(g, gpusim::titanx_like(), opts);
      ratios.record(name, label, result.time_ms);
    }
  }
  harness::emit(ratios.normalized(), cfg, "fig08_jump");
  return 0;
}
