// Reproduces Table 2: properties of the input graphs (name, type, vertices,
// directed edges, min/avg/max degree, number of connected components) for
// the scaled synthetic suite.
#include <iostream>

#include "common/table.h"
#include "graph/stats.h"
#include "graph/suite.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv);

  Table t("Table 2: information about the input graphs (scaled suite, scale=" +
          Table::fmt(cfg.scale, 2) + ")");
  t.set_header({"Graph name", "Type", "Vertices", "Edges*", "dmin", "davg", "dmax", "CCs"});

  for (const auto& entry : paper_suite()) {
    if (!cfg.graph_filter.empty() &&
        std::find(cfg.graph_filter.begin(), cfg.graph_filter.end(), entry.name) ==
            cfg.graph_filter.end()) {
      continue;
    }
    const Graph g = entry.make(cfg.scale);
    const auto s = compute_stats(g, entry.name);
    t.add_row({s.name, entry.family, Table::fmt_count(s.num_vertices),
               Table::fmt_count(s.num_edges), Table::fmt_count(s.min_degree),
               Table::fmt(s.avg_degree, 1), Table::fmt_count(s.max_degree),
               Table::fmt_count(s.num_components)});
  }
  harness::emit(t, cfg, "table2_graphs");
  std::cout << "*each undirected edge is stored as two directed edges (CSR), as in the paper\n";
  return 0;
}
