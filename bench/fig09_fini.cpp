// Reproduces Fig. 9: total ECL-CC runtime on the (simulated) Titan X with
// the three finalization-kernel variants, normalized to Fini3 (single
// pointer jumping, the published choice).
#include "core/ecl_cc.h"
#include "gpusim/gpu_cc.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv, /*default_scale=*/0.5);

  const std::vector<std::pair<std::string, FinalizePolicy>> variants = {
      {"Fini1", FinalizePolicy::kIntermediate},
      {"Fini2", FinalizePolicy::kMultiple},
      {"Fini3 (ECL-CC)", FinalizePolicy::kSingle},
  };

  harness::RatioTable ratios(
      "Fig. 9: relative runtime of different finalizations on the simulated "
      "Titan X (normalized to Fini3; higher is worse)",
      "Fini3 (ECL-CC)", {"Fini1", "Fini2", "Fini3 (ECL-CC)"});

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    for (const auto& [label, policy] : variants) {
      gpusim::GpuEclOptions opts;
      opts.finalize = policy;
      const auto result = gpusim::ecl_cc_gpu(g, gpusim::titanx_like(), opts);
      ratios.record(name, label, result.time_ms);
    }
  }
  harness::emit(ratios.normalized(), cfg, "fig09_fini");
  return 0;
}
