// svc_loadgen — closed- and open-loop load generator for a running ecl_ccd.
//
// Each worker thread opens its own connection and issues a randomized mix of
// connectivity queries and edge-batch ingests against the daemon. Per-op
// latency is recorded into obs histograms, so the standard --report= JSON
// carries p50/p95/p99 tail latency alongside throughput.
//
//   $ ecl_ccd --vertices=100000 --unix=/tmp/ecl.sock &
//   $ svc_loadgen --unix=/tmp/ecl.sock --threads=4 --duration-ms=2000 [...]
//                 --report=loadgen.json
//
// Flags:
//   --unix=PATH | --host=A --port=P   daemon endpoint
//   --target=T[,T,...]   read-replica fan-out: each T is host:port or a unix
//                        socket path (anything containing '/'). Snapshot
//                        queries round-robin across all targets; ingests go
//                        to the first one (the primary). Per-target
//                        throughput and p99 land in the --report JSON under
//                        ecl.loadgen.target.<label>.* names. Overrides
//                        --unix/--host/--port (the first target doubles as
//                        the probe/shutdown endpoint).
//   --threads=N          worker threads / connections (default 4)
//   --duration-ms=N      run length per worker (default 2000)
//   --rate=R             open loop: target ops/sec per worker (0 = closed
//                        loop, i.e. back-to-back requests; default 0)
//   --ingest-frac=F      fraction of ops that are ingests (default 0.25)
//   --batch=N            edges per ingest batch (default 64)
//   --mode=snapshot|fresh  read mode for queries (default snapshot)
//   --seed=N             RNG seed (default 1)
//   --report=FILE.json   obs run report (throughput + latency percentiles)
//   --shutdown           send a graceful-shutdown request when done
//   --chaos              survive daemon crashes: never stop on transport
//                        errors (the client reconnects + retries), use a
//                        deep retry budget, and keep hammering until the
//                        duration elapses — pair with --acked-file
//   --acked-file=FILE    append "u v" lines for every *acked* (kOk) ingest
//                        batch, flushed per batch; the chaos harness checks
//                        each of these edges is connected after a crash +
//                        WAL-replay restart
//   --retries=N          client retry budget per op (default 4; 20 in chaos)
//   --op-timeout-ms=N    per-attempt socket deadline (default 10000)
//   --slow-us=N          with --slow-file: an op whose client-observed
//                        latency is >= N microseconds is recorded
//   --slow-file=FILE     append "request_id op latency_us" per slow op; the
//                        ids are the ones the daemon's --slow-log captured
//                        server-side, so the two files join on id
//
// C10K mode (replaces the thread-per-connection workers):
//   --connections=N[,M,...]  hold N sockets open simultaneously, multiplexed
//                        by a few event-loop threads instead of N threads; a
//                        comma-separated list runs one phase per count, so a
//                        single invocation produces the 64-vs-2000-connection
//                        comparison in one report
//   --pipeline=K         keep K requests in flight per connection (default 8)
//   --io-threads=N       client-side event-loop threads (default 2)
//   Per phase, throughput and the latency distribution land in the report
//   JSON under connection-count-keyed names (ecl.loadgen.c10k.op_us.c<N>
//   histogram with p50/p95/p99, ecl.loadgen.c10k.c<N>.throughput_ops gauge).
//
// Exit codes: 0 success, 1 connect/usage failure, 2 every op failed.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <deque>
#include <memory>
#include <mutex>
#include <random>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/cli.h"
#include "common/timer.h"
#include "exec/event_loop.h"
#include "obs/metrics.h"
#include "obs/report.h"
#include "svc/client.h"
#include "svc/net.h"
#include "svc/protocol.h"

namespace {

using namespace ecl;

struct WorkerResult {
  std::uint64_t queries = 0;
  std::uint64_t ingests = 0;
  std::uint64_t shed = 0;
  std::uint64_t errors = 0;
  std::uint64_t edges_sent = 0;
  std::uint64_t retries = 0;
  std::uint64_t reconnects = 0;
  double wall_ms = 0.0;
};

/// One --target endpoint. label is the raw flag text (for printing); the
/// metric-name-safe form is derived where needed.
struct TargetSpec {
  std::string unix_path;
  std::string host = "127.0.0.1";
  int port = 0;
  std::string label;
};

struct LoadConfig {
  std::string unix_path;
  std::string host;
  int port = 0;
  /// Always holds >= 1 entry once main() finishes parsing; entry 0 is the
  /// ingest/probe endpoint. per_target gates the per-target report section.
  std::vector<TargetSpec> targets;
  bool per_target = false;
  int threads = 4;
  int duration_ms = 2000;
  double rate = 0.0;  // ops/sec per worker; 0 = closed loop
  double ingest_frac = 0.25;
  std::size_t batch = 64;
  svc::ReadMode mode = svc::ReadMode::kSnapshot;
  std::uint64_t seed = 1;
  vertex_t num_vertices = 0;
  bool chaos = false;
  std::uint64_t slow_us = 0;  // with a slow file: ops at least this slow
  svc::ClientOptions copts;
  std::vector<int> connections;  // C10K phases; empty = thread workers
  int pipeline = 8;              // in-flight requests per connection
  int io_threads = 2;            // client-side event-loop threads
};

/// Shared sink for --acked-file: every kOk ingest batch is appended and
/// flushed under the lock, so after a daemon crash the file holds exactly
/// the edges whose durability the server acknowledged.
std::FILE* g_acked_file = nullptr;
std::mutex g_acked_mu;

void record_acked(const std::vector<Edge>& batch) {
  if (g_acked_file == nullptr) return;
  std::lock_guard<std::mutex> lock(g_acked_mu);
  for (const auto& [u, v] : batch) std::fprintf(g_acked_file, "%u %u\n", u, v);
  std::fflush(g_acked_file);
}

/// Shared sink for --slow-file: one "request_id op latency_us" line per op
/// the *client* observed as slow. The id is the one stamped on the wire, so
/// these lines join with the daemon's --slow-log JSON on request_id.
std::FILE* g_slow_file = nullptr;
std::mutex g_slow_mu;
std::atomic<std::uint64_t> g_slow_ops{0};

void record_slow(const svc::Client& client, const char* op, std::uint64_t us,
                 std::uint64_t threshold_us) {
  if (g_slow_file == nullptr || us < threshold_us) return;
  g_slow_ops.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(g_slow_mu);
  std::fprintf(g_slow_file, "%llu %s %llu\n",
               static_cast<unsigned long long>(client.last_request_id()), op,
               static_cast<unsigned long long>(us));
  std::fflush(g_slow_file);
}

std::unique_ptr<svc::Client> connect_target(const LoadConfig& cfg,
                                            const TargetSpec& t,
                                            std::string* err, int tid = 0) {
  svc::ClientOptions copts = cfg.copts;
  copts.backoff_seed = cfg.seed * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(tid);
  return t.unix_path.empty()
             ? svc::Client::connect_tcp(t.host, t.port, err, copts)
             : svc::Client::connect_unix(t.unix_path, err, copts);
}

std::unique_ptr<svc::Client> connect(const LoadConfig& cfg, std::string* err,
                                     int tid = 0) {
  TargetSpec t;
  t.unix_path = cfg.unix_path;
  t.host = cfg.host;
  t.port = cfg.port;
  return connect_target(cfg, t, err, tid);
}

/// Per-target aggregation for --target fan-out: each target gets its own
/// query histogram plus shared atomic tallies the workers bump directly.
struct TargetAgg {
  obs::Histogram* query_us = nullptr;
  std::string key;  // metric-name-safe label (':' and '/' mapped to '_')
  std::atomic<std::uint64_t> queries{0};
  std::atomic<std::uint64_t> errors{0};
};
std::vector<TargetAgg>* g_targets = nullptr;

void worker(const LoadConfig& cfg, int tid, obs::Histogram& query_us,
            obs::Histogram& ingest_us, WorkerResult& out) {
  std::string err;
  // One connection per target; clients[0] is the primary (ingests), queries
  // round-robin across the whole set.
  std::vector<std::unique_ptr<svc::Client>> clients;
  clients.reserve(cfg.targets.size());
  for (std::size_t i = 0; i < cfg.targets.size(); ++i) {
    auto c = connect_target(cfg, cfg.targets[i], &err,
                            tid + static_cast<int>(i) * cfg.threads);
    if (!c) {
      std::fprintf(stderr, "worker %d: connect to %s failed: %s\n", tid,
                   cfg.targets[i].label.c_str(), err.c_str());
      out.errors = 1;
      return;
    }
    clients.push_back(std::move(c));
  }
  // Stagger each worker's starting target so short runs still spread reads
  // evenly instead of all hammering target 0 first.
  std::size_t rr = static_cast<std::size_t>(tid) % clients.size();

  std::mt19937_64 rng(cfg.seed * 1315423911u + static_cast<std::uint64_t>(tid));
  std::uniform_int_distribution<vertex_t> pick_vertex(0, cfg.num_vertices - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::vector<Edge> batch;
  batch.reserve(cfg.batch);

  using clock = std::chrono::steady_clock;
  const auto start = clock::now();
  const auto deadline = start + std::chrono::milliseconds(cfg.duration_ms);
  // Open loop: fire at fixed wall-clock slots so service time does not gate
  // the offered load (queueing shows up as latency, not lost throughput).
  const auto period =
      cfg.rate > 0.0 ? std::chrono::duration_cast<clock::duration>(
                           std::chrono::duration<double>(1.0 / cfg.rate))
                     : clock::duration::zero();
  auto next_slot = start;

  Timer wall;
  while (clock::now() < deadline) {
    if (cfg.rate > 0.0) {
      std::this_thread::sleep_until(next_slot);
      next_slot += period;
    }
    if (coin(rng) < cfg.ingest_frac) {
      svc::Client& client = *clients[0];  // ingests always hit the primary
      batch.clear();
      for (std::size_t i = 0; i < cfg.batch; ++i) {
        batch.emplace_back(pick_vertex(rng), pick_vertex(rng));
      }
      Timer t;
      const svc::Status st = client.ingest(batch);
      const auto us = static_cast<std::uint64_t>(t.micros());
      ingest_us.record(us);
      record_slow(client, "ingest", us, cfg.slow_us);
      if (st == svc::Status::kOk) {
        ++out.ingests;
        out.edges_sent += batch.size();
        record_acked(batch);
      } else if (st == svc::Status::kShed) {
        ++out.shed;
      } else {
        ++out.errors;
        // Chaos mode rides through daemon crashes: the client's reconnect +
        // retry policy re-establishes the connection once the daemon is
        // back, so a transport error is just another sample, not the end.
        if (st == svc::Status::kError && !cfg.chaos) break;
      }
    } else {
      const std::size_t ti = rr;
      rr = (rr + 1) % clients.size();
      svc::Client& client = *clients[ti];
      svc::Status st = svc::Status::kOk;
      Timer t;
      (void)client.connected(pick_vertex(rng), pick_vertex(rng), cfg.mode, &st);
      const auto us = static_cast<std::uint64_t>(t.micros());
      query_us.record(us);
      if (g_targets != nullptr) (*g_targets)[ti].query_us->record(us);
      record_slow(client, "connected", us, cfg.slow_us);
      if (st == svc::Status::kOk) {
        ++out.queries;
        if (g_targets != nullptr) {
          (*g_targets)[ti].queries.fetch_add(1, std::memory_order_relaxed);
        }
      } else {
        ++out.errors;
        if (g_targets != nullptr) {
          (*g_targets)[ti].errors.fetch_add(1, std::memory_order_relaxed);
        }
        if (st == svc::Status::kError && !cfg.chaos) break;
      }
    }
  }
  out.wall_ms = wall.millis();
  for (const auto& c : clients) {
    out.retries += c->retries();
    out.reconnects += c->reconnects();
  }
}

// ---- C10K mode -------------------------------------------------------------
//
// Thousands of connections, a handful of threads: every socket is adopted by
// an ecl::exec event loop, each keeps --pipeline requests in flight, and the
// daemon's in-order response guarantee lets a plain FIFO match responses to
// requests. All per-connection state is touched only on its loop's thread.

struct PendingOp {
  std::uint64_t id = 0;
  svc::MsgType type = svc::MsgType::kPing;
  std::chrono::steady_clock::time_point sent;
  std::vector<Edge> batch;  // retained for --acked-file until the ack lands
};

struct C10kShared {
  const LoadConfig* cfg = nullptr;
  obs::Histogram* op_us = nullptr;      // this phase, all ops
  obs::Histogram* query_us = nullptr;   // cross-phase loadgen histograms
  obs::Histogram* ingest_us = nullptr;
  std::atomic<bool> stop_sending{false};
  std::atomic<int> open{0};
  std::atomic<std::uint64_t> next_id{1};
};

struct C10kConn {
  C10kShared* sh = nullptr;
  std::mt19937_64 rng;
  std::deque<PendingOp> inflight;
  WorkerResult out;
  bool keep_batches = false;
};

void c10k_send_one(ecl::exec::Conn& conn, C10kConn& st) {
  C10kShared& sh = *st.sh;
  const LoadConfig& cfg = *sh.cfg;
  std::uniform_int_distribution<vertex_t> pick(0, cfg.num_vertices - 1);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  PendingOp op;
  op.id = sh.next_id.fetch_add(1, std::memory_order_relaxed);
  op.sent = std::chrono::steady_clock::now();
  svc::Request req;
  req.id = op.id;
  if (coin(st.rng) < cfg.ingest_frac) {
    req.type = svc::MsgType::kIngest;
    req.edges.reserve(cfg.batch);
    for (std::size_t i = 0; i < cfg.batch; ++i) {
      req.edges.emplace_back(pick(st.rng), pick(st.rng));
    }
    if (st.keep_batches) op.batch = req.edges;
  } else {
    req.type = svc::MsgType::kConnected;
    req.u = pick(st.rng);
    req.v = pick(st.rng);
    req.mode = cfg.mode;
  }
  op.type = req.type;
  thread_local std::vector<std::uint8_t> buf;
  buf.clear();
  svc::encode_request(req, buf);  // complete frame, length prefix included
  st.inflight.push_back(std::move(op));
  conn.send(buf.data(), buf.size());
}

void c10k_top_up(ecl::exec::Conn& conn, C10kConn& st) {
  while (!conn.closing() &&
         !st.sh->stop_sending.load(std::memory_order_acquire) &&
         st.inflight.size() < static_cast<std::size_t>(st.sh->cfg->pipeline)) {
    c10k_send_one(conn, st);
  }
}

void c10k_on_frame(ecl::exec::Conn& conn, std::span<const std::uint8_t> payload,
                   C10kConn& st) {
  C10kShared& sh = *st.sh;
  svc::Response resp;
  if (!svc::decode_response(payload, resp) || st.inflight.empty() ||
      resp.id != st.inflight.front().id) {
    // Undecodable or out-of-order: the pipeline bookkeeping is broken on
    // this connection, so stop trusting it.
    ++st.out.errors;
    conn.close(ecl::exec::CloseReason::kProtocolError);
    return;
  }
  PendingOp op = std::move(st.inflight.front());
  st.inflight.pop_front();
  const auto us = static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::microseconds>(
          std::chrono::steady_clock::now() - op.sent)
          .count());
  sh.op_us->record(us);
  if (op.type == svc::MsgType::kIngest) {
    sh.ingest_us->record(us);
    if (resp.status == svc::Status::kOk) {
      ++st.out.ingests;
      st.out.edges_sent += sh.cfg->batch;
      if (st.keep_batches) record_acked(op.batch);
    } else if (resp.status == svc::Status::kShed) {
      ++st.out.shed;
    } else {
      ++st.out.errors;
    }
  } else {
    sh.query_us->record(us);
    if (resp.status == svc::Status::kOk) {
      ++st.out.queries;
    } else {
      ++st.out.errors;
    }
  }
  if (sh.stop_sending.load(std::memory_order_acquire)) {
    if (st.inflight.empty()) conn.close();  // tail drained: this one is done
    return;
  }
  c10k_top_up(conn, st);
}

void c10k_on_close(C10kConn& st) {
  // Anything still in flight at close (eviction, shutdown) went unanswered.
  st.out.errors += st.inflight.size();
  st.inflight.clear();
  st.sh->open.fetch_sub(1, std::memory_order_acq_rel);
}

struct C10kPhase {
  int requested = 0;
  int connected = 0;
  WorkerResult total;
  double wall_ms = 0.0;
  std::uint64_t ops = 0;
  double throughput = 0.0;
  double p99_us = 0.0;
};

bool run_c10k_phase(const LoadConfig& cfg, int conns, obs::Histogram& query_us,
                    obs::Histogram& ingest_us, C10kPhase& out) {
  out.requested = conns;
  C10kShared sh;
  sh.cfg = &cfg;
  sh.query_us = &query_us;
  sh.ingest_us = &ingest_us;
  sh.op_us = &obs::registry().histogram(
      "ecl.loadgen.c10k.op_us.c" + std::to_string(conns),
      obs::Histogram::pow2_bounds(22));

  ecl::exec::EventLoopPool pool(cfg.io_threads);
  std::vector<std::unique_ptr<C10kConn>> states;
  states.reserve(static_cast<std::size_t>(conns));
  std::string err;
  for (int i = 0; i < conns; ++i) {
    // A burst of thousands of connects races the daemon's accept loop; a
    // full listen backlog is transient, so retry with a short pause before
    // giving up on the remaining connections.
    int fd = -1;
    for (int attempt = 0; fd < 0 && attempt < 50; ++attempt) {
      if (attempt > 0) std::this_thread::sleep_for(std::chrono::milliseconds(20));
      fd = cfg.unix_path.empty()
               ? svc::net::connect_tcp(cfg.host, cfg.port, &err,
                                       cfg.copts.op_timeout_ms)
               : svc::net::connect_unix(cfg.unix_path, &err,
                                        cfg.copts.op_timeout_ms);
    }
    if (fd < 0) {
      std::fprintf(stderr, "c10k: connect %d/%d failed: %s\n", i + 1, conns,
                   err.c_str());
      break;
    }
    auto st = std::make_unique<C10kConn>();
    st->sh = &sh;
    st->rng.seed(cfg.seed * 0x9E3779B97F4A7C15ull + static_cast<std::uint64_t>(i));
    st->keep_batches = g_acked_file != nullptr;
    C10kConn* raw = st.get();
    ecl::exec::ConnCallbacks cbs;
    cbs.on_frame = [raw](ecl::exec::Conn& c, std::span<const std::uint8_t> p) {
      c10k_on_frame(c, p, *raw);
    };
    cbs.on_close = [raw](ecl::exec::Conn&, ecl::exec::CloseReason) {
      c10k_on_close(*raw);
    };
    ecl::exec::ConnOptions copts;
    // A connection whose responses stop arriving is abandoned after the op
    // timeout (its unanswered in-flight ops are counted as errors).
    copts.idle_timeout_ms = cfg.copts.op_timeout_ms;
    // Loops are not started yet, so adopting and priming from this thread
    // is legal; the pipelines are full the instant the clock starts.
    ecl::exec::Conn* conn = pool.next().adopt(fd, std::move(cbs), copts);
    if (conn == nullptr) {
      std::fprintf(stderr, "c10k: adopt failed for connection %d\n", i + 1);
      break;
    }
    sh.open.fetch_add(1, std::memory_order_relaxed);
    c10k_top_up(*conn, *raw);
    states.push_back(std::move(st));
  }
  out.connected = static_cast<int>(states.size());
  if (out.connected == 0) return false;

  Timer wall;
  if (!pool.start(&err)) {
    std::fprintf(stderr, "c10k: event loop start failed: %s\n", err.c_str());
    return false;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(cfg.duration_ms));
  sh.stop_sending.store(true, std::memory_order_release);
  // Every connection always has in-flight requests until it observes the
  // stop flag, so each one drains its tail and closes itself; stuck peers
  // fall to the idle eviction. Bounded wait, then hard stop regardless.
  const auto drain_deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(cfg.copts.op_timeout_ms + 2000);
  while (sh.open.load(std::memory_order_acquire) > 0 &&
         std::chrono::steady_clock::now() < drain_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  out.wall_ms = wall.millis();
  pool.stop();

  for (const auto& st : states) {
    out.total.queries += st->out.queries;
    out.total.ingests += st->out.ingests;
    out.total.shed += st->out.shed;
    out.total.errors += st->out.errors;
    out.total.edges_sent += st->out.edges_sent;
  }
  out.ops = out.total.queries + out.total.ingests;
  out.throughput = out.wall_ms > 0.0
                       ? static_cast<double>(out.ops) / (out.wall_ms / 1000.0)
                       : 0.0;
  out.p99_us = sh.op_us->count() > 0 ? sh.op_us->percentile(0.99) : 0.0;
  obs::registry()
      .gauge("ecl.loadgen.c10k.c" + std::to_string(conns) + ".throughput_ops")
      .set(out.throughput);
  obs::registry()
      .gauge("ecl.loadgen.c10k.c" + std::to_string(conns) + ".p99_us")
      .set(out.p99_us);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  CliArgs args(argc, argv);

  LoadConfig cfg;
  cfg.unix_path = args.get("unix", "");
  cfg.host = args.get("host", "127.0.0.1");
  cfg.port = static_cast<int>(args.get_int("port", 0));
  cfg.threads = static_cast<int>(args.get_int("threads", 4));
  cfg.duration_ms = static_cast<int>(args.get_int("duration-ms", 2000));
  cfg.rate = args.get_double("rate", 0.0);
  cfg.ingest_frac = args.get_double("ingest-frac", 0.25);
  cfg.batch = static_cast<std::size_t>(args.get_int("batch", 64));
  cfg.seed = static_cast<std::uint64_t>(args.get_int("seed", 1));
  const std::string mode_name = args.get("mode", "snapshot");
  cfg.mode = mode_name == "fresh" ? svc::ReadMode::kFresh : svc::ReadMode::kSnapshot;
  const std::string report_file = args.get("report", "");
  const bool send_shutdown = args.has("shutdown");
  cfg.chaos = args.has("chaos");
  cfg.copts.max_retries =
      static_cast<int>(args.get_int("retries", cfg.chaos ? 20 : 4));
  cfg.copts.op_timeout_ms = static_cast<int>(args.get_int("op-timeout-ms", 10000));
  if (cfg.chaos) cfg.copts.backoff_max_ms = 500;  // recover fast after restart
  const std::string acked_path = args.get("acked-file", "");
  cfg.slow_us = static_cast<std::uint64_t>(args.get_int("slow-us", 0));
  const std::string slow_path = args.get("slow-file", "");
  const std::string conns_arg = args.get("connections", "");
  for (std::size_t pos = 0; pos < conns_arg.size();) {
    const std::size_t comma = std::min(conns_arg.find(',', pos), conns_arg.size());
    const int n = std::atoi(conns_arg.substr(pos, comma - pos).c_str());
    if (n > 0) cfg.connections.push_back(n);
    pos = comma + 1;
  }
  cfg.pipeline = static_cast<int>(args.get_int("pipeline", 8));
  cfg.io_threads = static_cast<int>(args.get_int("io-threads", 2));
  const std::string target_arg = args.get("target", "");
  for (std::size_t pos = 0; pos < target_arg.size();) {
    const std::size_t comma = std::min(target_arg.find(',', pos), target_arg.size());
    const std::string tok = target_arg.substr(pos, comma - pos);
    pos = comma + 1;
    if (tok.empty()) continue;
    TargetSpec t;
    t.label = tok;
    if (tok.find('/') != std::string::npos) {
      t.unix_path = tok;
    } else {
      const std::size_t colon = tok.rfind(':');
      t.host = colon == std::string::npos ? "" : tok.substr(0, colon);
      t.port = colon == std::string::npos ? 0 : std::atoi(tok.c_str() + colon + 1);
      if (t.host.empty() || t.port <= 0) {
        std::fprintf(stderr,
                     "error: --target entry '%s' is neither host:port nor a "
                     "unix socket path\n",
                     tok.c_str());
        return 1;
      }
    }
    cfg.targets.push_back(std::move(t));
  }
  cfg.per_target = !cfg.targets.empty();
  for (const auto& flag : args.unused()) {
    std::fprintf(stderr, "warning: unknown flag --%s\n", flag.c_str());
  }
  if (cfg.per_target) {
    if (!cfg.connections.empty()) {
      std::fprintf(stderr, "error: --target does not combine with --connections\n");
      return 1;
    }
    // The first target is the primary: probe, ingests, and --shutdown all
    // land there via the legacy endpoint fields.
    cfg.unix_path = cfg.targets[0].unix_path;
    cfg.host = cfg.targets[0].host.empty() ? "127.0.0.1" : cfg.targets[0].host;
    cfg.port = cfg.targets[0].port;
  } else if (cfg.unix_path.empty() && cfg.port == 0) {
    std::fprintf(stderr,
                 "error: no endpoint; pass --unix=PATH, --port=P, or --target=T\n");
    return 1;
  }
  if (cfg.targets.empty()) {
    TargetSpec t;
    t.unix_path = cfg.unix_path;
    t.host = cfg.host;
    t.port = cfg.port;
    t.label = cfg.unix_path.empty() ? cfg.host + ":" + std::to_string(cfg.port)
                                    : cfg.unix_path;
    cfg.targets.push_back(std::move(t));
  }
  if (cfg.threads < 1 || cfg.batch < 1) {
    std::fprintf(stderr, "error: --threads and --batch must be >= 1\n");
    return 1;
  }
  if (cfg.pipeline < 1 || cfg.io_threads < 1) {
    std::fprintf(stderr, "error: --pipeline and --io-threads must be >= 1\n");
    return 1;
  }
  if (!acked_path.empty()) {
    g_acked_file = std::fopen(acked_path.c_str(), "w");
    if (g_acked_file == nullptr) {
      std::fprintf(stderr, "error: cannot open --acked-file=%s\n", acked_path.c_str());
      return 1;
    }
  }
  if (!slow_path.empty()) {
    g_slow_file = std::fopen(slow_path.c_str(), "w");
    if (g_slow_file == nullptr) {
      std::fprintf(stderr, "error: cannot open --slow-file=%s\n", slow_path.c_str());
      return 1;
    }
  }

  // Probe the daemon and learn the vertex universe for random edge/query IDs.
  // The probe sits outside the worker tid range so its request-id stream
  // never collides with worker 0's (the slow-file join relies on unique ids).
  std::string err;
  auto probe = connect(cfg, &err, cfg.threads);
  if (!probe) {
    std::fprintf(stderr, "error: connect failed: %s\n", err.c_str());
    return 1;
  }
  svc::ServiceStats st{};
  if (!probe->stats(st) || st.num_vertices == 0) {
    std::fprintf(stderr, "error: cannot read service stats (or empty universe)\n");
    return 1;
  }
  cfg.num_vertices = st.num_vertices;
  if (cfg.connections.empty()) {
    std::printf("target: %u vertices, epoch %llu; %d workers, %s, %.0f%% ingest\n",
                cfg.num_vertices, static_cast<unsigned long long>(st.epoch),
                cfg.threads, cfg.rate > 0.0 ? "open loop" : "closed loop",
                cfg.ingest_frac * 100.0);
  } else {
    std::printf("target: %u vertices, epoch %llu; c10k mode, pipeline=%d, "
                "%d io threads, %.0f%% ingest\n",
                cfg.num_vertices, static_cast<unsigned long long>(st.epoch),
                cfg.pipeline, cfg.io_threads, cfg.ingest_frac * 100.0);
  }

  obs::Histogram& query_us = obs::registry().histogram(
      "ecl.loadgen.query_us", obs::Histogram::pow2_bounds(22));
  obs::Histogram& ingest_us = obs::registry().histogram(
      "ecl.loadgen.ingest_us", obs::Histogram::pow2_bounds(22));

  std::vector<TargetAgg> target_aggs(cfg.targets.size());
  if (cfg.per_target) {
    for (std::size_t i = 0; i < cfg.targets.size(); ++i) {
      std::string key = cfg.targets[i].label;
      for (auto& ch : key) {
        if (ch == ':' || ch == '/') ch = '_';
      }
      target_aggs[i].query_us = &obs::registry().histogram(
          "ecl.loadgen.target." + key + ".query_us",
          obs::Histogram::pow2_bounds(22));
      target_aggs[i].key = std::move(key);
    }
    g_targets = &target_aggs;
  }

  WorkerResult total;
  double wall_ms = 0.0;
  std::vector<double> per_thread_ms;
  if (!cfg.connections.empty()) {
    for (const int conns : cfg.connections) {
      C10kPhase phase;
      if (!run_c10k_phase(cfg, conns, query_us, ingest_us, phase)) return 1;
      std::printf("c10k[%d conns, %d connected]: %llu ops in %.0f ms "
                  "(%.0f ops/s), p99=%.1f us, %llu shed, %llu errors\n",
                  phase.requested, phase.connected,
                  static_cast<unsigned long long>(phase.ops), phase.wall_ms,
                  phase.throughput, phase.p99_us,
                  static_cast<unsigned long long>(phase.total.shed),
                  static_cast<unsigned long long>(phase.total.errors));
      total.queries += phase.total.queries;
      total.ingests += phase.total.ingests;
      total.shed += phase.total.shed;
      total.errors += phase.total.errors;
      total.edges_sent += phase.total.edges_sent;
      wall_ms += phase.wall_ms;
      per_thread_ms.push_back(phase.wall_ms);
      obs::run_report().add_cell("c10k", "conns_" + std::to_string(conns),
                                 {phase.wall_ms});
    }
  } else {
    std::vector<WorkerResult> results(static_cast<std::size_t>(cfg.threads));
    std::vector<std::thread> threads;
    threads.reserve(static_cast<std::size_t>(cfg.threads));
    Timer wall;
    for (int t = 0; t < cfg.threads; ++t) {
      threads.emplace_back(worker, std::cref(cfg), t, std::ref(query_us),
                           std::ref(ingest_us), std::ref(results[static_cast<std::size_t>(t)]));
    }
    for (auto& th : threads) th.join();
    wall_ms = wall.millis();
    for (const auto& r : results) {
      total.queries += r.queries;
      total.ingests += r.ingests;
      total.shed += r.shed;
      total.errors += r.errors;
      total.edges_sent += r.edges_sent;
      total.retries += r.retries;
      total.reconnects += r.reconnects;
      if (r.wall_ms > 0.0) per_thread_ms.push_back(r.wall_ms);
    }
  }
  const std::uint64_t ops = total.queries + total.ingests;
  const double throughput = wall_ms > 0.0 ? static_cast<double>(ops) / (wall_ms / 1000.0) : 0.0;
  ECL_OBS_GAUGE_SET("ecl.loadgen.throughput_ops", throughput);
  ECL_OBS_GAUGE_SET("ecl.loadgen.shed_batches", static_cast<double>(total.shed));

  std::printf("done in %.0f ms: %llu ops (%llu queries, %llu ingests, %llu edges), "
              "%.0f ops/s, %llu shed, %llu errors\n",
              wall_ms, static_cast<unsigned long long>(ops),
              static_cast<unsigned long long>(total.queries),
              static_cast<unsigned long long>(total.ingests),
              static_cast<unsigned long long>(total.edges_sent), throughput,
              static_cast<unsigned long long>(total.shed),
              static_cast<unsigned long long>(total.errors));
  // An empty histogram's quantiles are the defined 0.0 sentinel (see
  // obs::percentile_from_buckets) — print "no samples" instead of implying a
  // measured zero-microsecond tail.
  const auto print_latency = [](const char* label, const obs::Histogram& h) {
    if (h.count() == 0) {
      std::printf("%s latency us: no samples\n", label);
      return;
    }
    std::printf("%s latency us: p50=%.1f p95=%.1f p99=%.1f (n=%llu, max=%llu)\n",
                label, h.percentile(0.50), h.percentile(0.95), h.percentile(0.99),
                static_cast<unsigned long long>(h.count()),
                static_cast<unsigned long long>(h.max()));
  };
  print_latency("query ", query_us);
  print_latency("ingest", ingest_us);
  if (cfg.per_target) {
    const double wall_s = wall_ms > 0.0 ? wall_ms / 1000.0 : 0.0;
    for (std::size_t i = 0; i < cfg.targets.size(); ++i) {
      TargetAgg& agg = target_aggs[i];
      const std::uint64_t q = agg.queries.load(std::memory_order_relaxed);
      const std::uint64_t e = agg.errors.load(std::memory_order_relaxed);
      const double thr = wall_s > 0.0 ? static_cast<double>(q) / wall_s : 0.0;
      const double p99 =
          agg.query_us->count() > 0 ? agg.query_us->percentile(0.99) : 0.0;
      std::printf("target[%zu] %s: %llu queries (%.0f/s), p99=%.1f us, "
                  "%llu errors\n",
                  i, cfg.targets[i].label.c_str(),
                  static_cast<unsigned long long>(q), thr, p99,
                  static_cast<unsigned long long>(e));
      obs::registry()
          .gauge("ecl.loadgen.target." + agg.key + ".throughput_ops")
          .set(thr);
      obs::registry().gauge("ecl.loadgen.target." + agg.key + ".p99_us").set(p99);
      obs::run_report().add_cell("targets", agg.key, {wall_ms});
    }
  }
  if (total.retries > 0 || total.reconnects > 0) {
    std::printf("resilience: %llu retries, %llu reconnects\n",
                static_cast<unsigned long long>(total.retries),
                static_cast<unsigned long long>(total.reconnects));
  }
  if (g_acked_file != nullptr) {
    std::fclose(g_acked_file);
    g_acked_file = nullptr;
  }
  if (g_slow_file != nullptr) {
    std::fclose(g_slow_file);
    g_slow_file = nullptr;
    std::printf("slow ops: %llu at >= %llu us\n",
                static_cast<unsigned long long>(g_slow_ops.load()),
                static_cast<unsigned long long>(cfg.slow_us));
  }

  if (!report_file.empty()) {
    obs::run_report().set_bench_name("svc_loadgen");
    obs::run_report().set_config(/*scale=*/static_cast<double>(cfg.threads),
                                 /*reps=*/cfg.threads);
    if (cfg.connections.empty()) {  // c10k phases already added their cells
      obs::run_report().add_cell("service", cfg.rate > 0.0 ? "open_loop" : "closed_loop",
                                 per_thread_ms.empty() ? std::vector<double>{wall_ms}
                                                       : per_thread_ms);
    }
    if (!obs::run_report().write_file(report_file)) {
      std::fprintf(stderr, "error: cannot write report to %s\n", report_file.c_str());
      return 1;
    }
    std::printf("report written to %s\n", report_file.c_str());
  }

  if (send_shutdown) {
    if (auto c = connect(cfg, &err, cfg.threads + 1); c && c->shutdown_server()) {
      std::printf("shutdown request acknowledged\n");
    } else {
      std::fprintf(stderr, "warning: shutdown request failed\n");
    }
  }
  return ops == 0 ? 2 : 0;
}
