// Reproduces Fig. 15 + Table 9: the five serial CPU codes (ECL-CCser,
// Galois, Boost, Lemon, igraph) — wall-clock medians, normalized to
// ECL-CCser and absolute.
#include <cstdio>

#include "baselines/registry.h"
#include "core/verify.h"
#include "graph/stats.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv);

  std::vector<std::string> names;
  for (const auto& code : baselines::serial_cpu_codes()) names.push_back(code.name);
  harness::RatioTable ratios(
      "Fig. 15: serial CPU runtime relative to ECL-CCser (higher is worse)",
      "ECL-CCser", names);

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    const auto reference = reference_components(g);
    for (const auto& code : baselines::serial_cpu_codes()) {
      const auto runner = code.prepare(g, 1);
      std::vector<vertex_t> labels;
      const double ms = harness::measure_cell(cfg, name, code.name, [&] { labels = runner(); });
      if (!same_partition(labels, reference)) {
        std::fprintf(stderr, "VERIFICATION FAILED: %s on %s\n", code.name.c_str(),
                     name.c_str());
        return 1;
      }
      ratios.record(name, code.name, ms);
    }
  }
  harness::emit(ratios.normalized(), cfg, "fig15_cpu_serial");
  harness::emit(ratios.absolute("Table 9: absolute serial runtimes (ms) on this host"),
                cfg, "table9_cpu_serial_abs");
  return 0;
}
