// Reproduces Fig. 16 + Table 10: the serial CPU comparison on the paper's
// second (older X5690) machine. Only the hardware differs from Fig. 15 —
// we have a single host, so this binary repeats the measurement as an
// independent second sample on this host (which also serves as a stability
// check of Fig. 15). The hardware substitution is recorded in DESIGN.md and
// EXPERIMENTS.md; the paper's qualitative Fig. 16 finding is that
// ECL-CCser's advantage persists (and grows) on older hardware.
#include <cstdio>

#include "baselines/registry.h"
#include "core/verify.h"
#include "graph/stats.h"
#include "harness/bench_harness.h"

int main(int argc, char** argv) {
  using namespace ecl;
  const auto cfg = harness::parse_config(argc, argv);

  std::vector<std::string> names;
  for (const auto& code : baselines::serial_cpu_codes()) names.push_back(code.name);
  harness::RatioTable ratios(
      "Fig. 16: serial CPU runtime relative to ECL-CCser, second measurement "
      "pass (higher is worse)",
      "ECL-CCser", names);

  for (const auto& [name, g] : harness::load_suite(cfg)) {
    const auto reference = reference_components(g);
    for (const auto& code : baselines::serial_cpu_codes()) {
      const auto runner = code.prepare(g, 1);
      std::vector<vertex_t> labels;
      const double ms = harness::measure_cell(cfg, name, code.name, [&] { labels = runner(); });
      if (!same_partition(labels, reference)) {
        std::fprintf(stderr, "VERIFICATION FAILED: %s on %s\n", code.name.c_str(),
                     name.c_str());
        return 1;
      }
      ratios.record(name, code.name, ms);
    }
  }
  harness::emit(ratios.normalized(), cfg, "fig16_cpu_serial2");
  harness::emit(ratios.absolute("Table 10: absolute serial runtimes (ms), second pass"),
                cfg, "table10_cpu_serial2_abs");
  return 0;
}
