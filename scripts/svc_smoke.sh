#!/usr/bin/env bash
# End-to-end smoke test for the connectivity service: starts ecl_ccd on a
# Unix socket, exercises it with ecl_cc_client and svc_loadgen, asks for a
# graceful shutdown, and validates the run-report JSON (throughput cell +
# p50/p95/p99 latency histograms from the obs registry).
#
#   usage: svc_smoke.sh <ecl_ccd> <ecl_cc_client> <svc_loadgen>
set -euo pipefail

CCD=$1
CLIENT=$2
LOADGEN=$3

WORK=$(mktemp -d "${TMPDIR:-/tmp}/ecl_svc_smoke.XXXXXX")
SOCK="$WORK/ccd.sock"
READY="$WORK/ready.txt"
CCD_LOG="$WORK/ccd.log"
CCD_REPORT="$WORK/ccd_report.json"
LOADGEN_REPORT="$WORK/loadgen_report.json"

cleanup() {
  if [[ -n "${CCD_PID:-}" ]] && kill -0 "$CCD_PID" 2>/dev/null; then
    kill "$CCD_PID" 2>/dev/null || true
    wait "$CCD_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== starting ecl_ccd on $SOCK"
"$CCD" --vertices=20000 --unix="$SOCK" --ready-file="$READY" \
       --report="$CCD_REPORT" >"$CCD_LOG" 2>&1 &
CCD_PID=$!

for _ in $(seq 1 100); do
  [[ -f "$READY" ]] && break
  kill -0 "$CCD_PID" 2>/dev/null || { echo "daemon died:"; cat "$CCD_LOG"; exit 1; }
  sleep 0.1
done
[[ -f "$READY" ]] || { echo "daemon never became ready"; cat "$CCD_LOG"; exit 1; }

echo "== client round trips"
"$CLIENT" --unix="$SOCK" ping
"$CLIENT" --unix="$SOCK" ingest 1 2 2 3
"$CLIENT" --unix="$SOCK" connected 1 3 | grep -qx "connected"
"$CLIENT" --unix="$SOCK" connected 1 4 | grep -qx "not-connected"
"$CLIENT" --unix="$SOCK" stats

echo "== load generation"
"$LOADGEN" --unix="$SOCK" --threads=4 --duration-ms=1000 \
           --report="$LOADGEN_REPORT"

echo "== graceful shutdown"
"$CLIENT" --unix="$SOCK" shutdown
wait "$CCD_PID"
CCD_EXIT=$?
[[ "$CCD_EXIT" -eq 0 ]] || { echo "daemon exit code $CCD_EXIT"; cat "$CCD_LOG"; exit 1; }
grep -q "^shutdown:" "$CCD_LOG" || { echo "no shutdown line:"; cat "$CCD_LOG"; exit 1; }

echo "== validating report JSON"
python3 - "$LOADGEN_REPORT" "$CCD_REPORT" <<'EOF'
import json, sys

r = json.load(open(sys.argv[1]))
assert r['schema_version'] == 1, r['schema_version']
assert r['bench'] == 'svc_loadgen', r['bench']
assert r['cells'] and all(
    c['rep_ms'] and c['min_ms'] <= c['median_ms'] <= c['max_ms'] for c in r['cells'])
hists = {m['name']: m for m in r['metrics'] if 'p99' in m}
for name in ('ecl.loadgen.query_us', 'ecl.loadgen.ingest_us'):
    m = hists[name]
    assert m['count'] > 0, (name, m)
    assert 0 < m['p50'] <= m['p95'] <= m['p99'], (name, m)
throughput = [m for m in r['metrics'] if m['name'] == 'ecl.loadgen.throughput_ops']
assert throughput and throughput[0]['value'] > 0
print('loadgen report ok: %d ops/s, query p99=%.0fus' %
      (throughput[0]['value'], hists['ecl.loadgen.query_us']['p99']))

d = json.load(open(sys.argv[2]))
assert d['bench'] == 'ecl_ccd', d['bench']
served = {m['name']: m for m in d['metrics']}
assert served['ecl.svc.server.connections']['count'] > 0
op_hists = [m for m in d['metrics'] if m['name'].startswith('ecl.svc.op_us.')]
assert op_hists and all(m['p50'] <= m['p99'] for m in op_hists)
print('daemon report ok: %d metrics, %d per-op histograms' %
      (len(d['metrics']), len(op_hists)))
EOF

echo "svc smoke: PASS"
