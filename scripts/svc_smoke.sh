#!/usr/bin/env bash
# End-to-end smoke test for the connectivity service: starts ecl_ccd on a
# Unix socket with the metrics exporter and slow-request log enabled,
# exercises it with ecl_cc_client and svc_loadgen, renders a scripted
# ecl_cc_top snapshot, validates the Prometheus scrape and the run-report
# JSON, and checks that every op the loadgen observed as slow appears in the
# daemon's slow-request log under the same request id.
#
#   usage: svc_smoke.sh <ecl_ccd> <ecl_cc_client> <svc_loadgen> <ecl_cc_top>
set -euo pipefail

CCD=$1
CLIENT=$2
LOADGEN=$3
TOP=$4
SCRIPT_DIR=$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)

WORK=$(mktemp -d "${TMPDIR:-/tmp}/ecl_svc_smoke.XXXXXX")
SOCK="$WORK/ccd.sock"
READY="$WORK/ready.txt"
CCD_LOG="$WORK/ccd.log"
CCD_REPORT="$WORK/ccd_report.json"
LOADGEN_REPORT="$WORK/loadgen_report.json"
SLOW_LOG="$WORK/slow.jsonl"
SLOW_FILE="$WORK/client_slow.txt"
SCRAPE="$WORK/scrape.txt"

cleanup() {
  if [[ -n "${CCD_PID:-}" ]] && kill -0 "$CCD_PID" 2>/dev/null; then
    kill "$CCD_PID" 2>/dev/null || true
    wait "$CCD_PID" 2>/dev/null || true
  fi
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== starting ecl_ccd on $SOCK (exporter + slow log enabled)"
# --slow-threshold-us=0 logs every served request, so the client-side slow
# file below must join against it on request id.
"$CCD" --vertices=20000 --unix="$SOCK" --ready-file="$READY" \
       --report="$CCD_REPORT" --metrics-port=0 \
       --slow-log="$SLOW_LOG" --slow-threshold-us=0 >"$CCD_LOG" 2>&1 &
CCD_PID=$!

for _ in $(seq 1 100); do
  [[ -f "$READY" ]] && break
  kill -0 "$CCD_PID" 2>/dev/null || { echo "daemon died:"; cat "$CCD_LOG"; exit 1; }
  sleep 0.1
done
[[ -f "$READY" ]] || { echo "daemon never became ready"; cat "$CCD_LOG"; exit 1; }
MPORT=$(awk '/^metrics /{print $2}' "$READY")
[[ -n "$MPORT" ]] || { echo "no metrics port in ready file:"; cat "$READY"; exit 1; }
echo "   metrics exporter on port $MPORT"

echo "== client round trips"
"$CLIENT" --unix="$SOCK" ping
"$CLIENT" --unix="$SOCK" ingest 1 2 2 3
"$CLIENT" --unix="$SOCK" connected 1 3 | grep -qx "connected"
"$CLIENT" --unix="$SOCK" connected 1 4 | grep -qx "not-connected"
"$CLIENT" --unix="$SOCK" stats

echo "== load generation (recording client-observed slow ops)"
"$LOADGEN" --unix="$SOCK" --threads=4 --duration-ms=1000 \
           --slow-us=1 --slow-file="$SLOW_FILE" \
           --report="$LOADGEN_REPORT"

echo "== live dashboard snapshot"
"$TOP" --unix="$SOCK" --plain --iterations=2 --interval-ms=200 >"$WORK/top.txt"
grep -q "requests" "$WORK/top.txt" || { echo "ecl_cc_top output:"; cat "$WORK/top.txt"; exit 1; }
grep -q "snapshot" "$WORK/top.txt"
grep -q "wal" "$WORK/top.txt"
sed 's/^/   top| /' "$WORK/top.txt" | head -8

echo "== scraping and validating /metrics"
python3 "$SCRIPT_DIR/check_metrics_export.py" \
    --url="http://127.0.0.1:$MPORT/metrics" \
    --require=ecl_svc_up --require=ecl_svc_epoch \
    --require=ecl_svc_requests_served_total --require=ecl_svc_queue_depth \
    --require=ecl_wal_enabled --require=ecl_ckpt_enabled \
    --require=ecl_svc_op_us_connected --require=ecl_exporter_scrapes_total

echo "== graceful shutdown"
"$CLIENT" --unix="$SOCK" shutdown
wait "$CCD_PID"
CCD_EXIT=$?
[[ "$CCD_EXIT" -eq 0 ]] || { echo "daemon exit code $CCD_EXIT"; cat "$CCD_LOG"; exit 1; }
grep -q "^shutdown:" "$CCD_LOG" || { echo "no shutdown line:"; cat "$CCD_LOG"; exit 1; }

echo "== validating slow-request log against client-observed slow ops"
python3 - "$SLOW_LOG" "$SLOW_FILE" <<'EOF'
import json, sys

server = {}
with open(sys.argv[1]) as f:
    for line in f:
        rec = json.loads(line)  # every line must be valid JSON
        for key in ('ts_ms', 'request_id', 'op', 'status', 'queue_depth',
                    'total_us', 'decode_us', 'queue_us', 'execute_us',
                    'encode_us', 'write_us'):
            assert key in rec, (key, rec)
        server[rec['request_id']] = rec
assert server, 'daemon slow log is empty'

client_ids = []
with open(sys.argv[2]) as f:
    for line in f:
        rid, op, us = line.split()
        client_ids.append((int(rid), op))
assert client_ids, 'loadgen recorded no slow ops'

missing = [(rid, op) for rid, op in client_ids if rid not in server]
assert not missing, f'{len(missing)} client-observed slow ops missing from the daemon log: {missing[:5]}'
for rid, op in client_ids:
    assert server[rid]['op'] == op, (rid, op, server[rid])
print('slow-log join ok: %d server lines, %d client slow ops all matched by id'
      % (len(server), len(client_ids)))
EOF

echo "== validating report JSON"
python3 - "$LOADGEN_REPORT" "$CCD_REPORT" <<'EOF'
import json, sys

r = json.load(open(sys.argv[1]))
assert r['schema_version'] == 1, r['schema_version']
assert r['bench'] == 'svc_loadgen', r['bench']
assert r['cells'] and all(
    c['rep_ms'] and c['min_ms'] <= c['median_ms'] <= c['max_ms'] for c in r['cells'])
hists = {m['name']: m for m in r['metrics'] if 'p99' in m}
for name in ('ecl.loadgen.query_us', 'ecl.loadgen.ingest_us'):
    m = hists[name]
    assert m['count'] > 0, (name, m)
    assert 0 < m['p50'] <= m['p95'] <= m['p99'], (name, m)
throughput = [m for m in r['metrics'] if m['name'] == 'ecl.loadgen.throughput_ops']
assert throughput and throughput[0]['value'] > 0
print('loadgen report ok: %d ops/s, query p99=%.0fus' %
      (throughput[0]['value'], hists['ecl.loadgen.query_us']['p99']))

d = json.load(open(sys.argv[2]))
assert d['bench'] == 'ecl_ccd', d['bench']
served = {m['name']: m for m in d['metrics']}
assert served['ecl.svc.server.connections']['count'] > 0
op_hists = [m for m in d['metrics'] if m['name'].startswith('ecl.svc.op_us.')]
assert op_hists and all(m['p50'] <= m['p99'] for m in op_hists)
print('daemon report ok: %d metrics, %d per-op histograms' %
      (len(d['metrics']), len(op_hists)))
EOF

echo "svc smoke: PASS"
