#!/usr/bin/env bash
# Chaos harness for the connectivity service (docs/ROBUSTNESS.md):
#
#   1. starts ecl_ccd with a write-ahead log and ECL_FAULT-injected socket
#      read/write failures and delays,
#   2. hammers it with svc_loadgen --chaos, which records every *acked*
#      ingest batch to a file (flushed per batch, so the file never claims
#      more than the daemon acknowledged),
#   3. SIGKILLs the daemon mid-run — no drain, no fsync-on-exit grace,
#   4. restarts it on the same WAL and lets the load generator's retry +
#      reconnect policy ride through the outage,
#   5. verifies, over the wire, that every edge of every acked batch is
#      connected in the revived daemon (acked => durable), and
#   6. shuts down gracefully and checks the daemon never went degraded.
#
#   usage: svc_chaos.sh <ecl_ccd> <ecl_cc_client> <svc_loadgen>
set -euo pipefail

CCD=$1
CLIENT=$2
LOADGEN=$3

WORK=$(mktemp -d "${TMPDIR:-/tmp}/ecl_svc_chaos.XXXXXX")
SOCK="$WORK/ccd.sock"
WAL="$WORK/edges.wal"
ACKED="$WORK/acked.txt"
CCD1_LOG="$WORK/ccd1.log"
CCD2_LOG="$WORK/ccd2.log"
LOADGEN_LOG="$WORK/loadgen.log"

cleanup() {
  for pid in "${CCD_PID:-}" "${LOADGEN_PID:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_ready() {
  local ready=$1 pid=$2 log=$3
  for _ in $(seq 1 100); do
    [[ -f "$ready" ]] && return 0
    kill -0 "$pid" 2>/dev/null || { echo "daemon died:"; cat "$log"; exit 1; }
    sleep 0.1
  done
  echo "daemon never became ready"; cat "$log"; exit 1
}

echo "== starting ecl_ccd (run 1) with WAL + injected socket faults"
# Low-probability read/write failures plus occasional 2 ms read delays on
# the daemon side: every client sees torn connections and slow responses.
ECL_FAULT='svc.net.read=fail,prob=0.003,seed=9;svc.net.write=fail,prob=0.003,seed=11;svc.net.read=delay,arg=2000,prob=0.02,seed=7' \
  "$CCD" --vertices=20000 --unix="$SOCK" --wal="$WAL" --wal-fsync=batch \
         --ready-file="$WORK/ready1" >"$CCD1_LOG" 2>&1 &
CCD_PID=$!
wait_ready "$WORK/ready1" "$CCD_PID" "$CCD1_LOG"

echo "== chaos load (background)"
"$LOADGEN" --unix="$SOCK" --threads=3 --duration-ms=5000 --batch=32 \
           --ingest-frac=0.5 --seed=3 --chaos --acked-file="$ACKED" \
           >"$LOADGEN_LOG" 2>&1 &
LOADGEN_PID=$!

sleep 1.5
echo "== SIGKILL mid-run"
kill -9 "$CCD_PID"
wait "$CCD_PID" 2>/dev/null || true
CCD_PID=

sleep 0.3
echo "== restarting on the same WAL"
"$CCD" --vertices=20000 --unix="$SOCK" --wal="$WAL" --wal-fsync=batch \
       --ready-file="$WORK/ready2" >"$CCD2_LOG" 2>&1 &
CCD_PID=$!
wait_ready "$WORK/ready2" "$CCD_PID" "$CCD2_LOG"
grep -q "^wal .*replayed" "$CCD2_LOG" || {
  echo "restart did not report WAL replay:"; cat "$CCD2_LOG"; exit 1; }

echo "== waiting for the load generator to ride out the outage"
wait "$LOADGEN_PID"
LOADGEN_EXIT=$?
LOADGEN_PID=
[[ "$LOADGEN_EXIT" -eq 0 ]] || {
  echo "loadgen exit code $LOADGEN_EXIT:"; cat "$LOADGEN_LOG"; exit 1; }
grep -E "resilience:" "$LOADGEN_LOG" || true
[[ -s "$ACKED" ]] || { echo "no acked batches recorded"; exit 1; }

echo "== verifying every acked edge against the revived daemon"
python3 - "$SOCK" "$ACKED" <<'PYEOF'
import socket, struct, sys, time

sock_path, acked_path = sys.argv[1], sys.argv[2]

def recv_exact(s, n):
    buf = b''
    while len(buf) < n:
        chunk = s.recv(n - len(buf))
        if not chunk:
            raise RuntimeError('daemon closed the connection mid-response')
        buf += chunk
    return buf

next_id = 0
def request(s, rtype, body=b''):
    global next_id
    next_id += 1
    payload = struct.pack('<BQ', rtype, next_id) + body
    s.sendall(struct.pack('<I', len(payload)) + payload)
    (n,) = struct.unpack('<I', recv_exact(s, 4))
    resp = recv_exact(s, n)
    rt, rid, status = struct.unpack_from('<BQB', resp, 0)
    assert rid == next_id, f'response id {rid} != request id {next_id}'
    return status, resp[10:]

edges = []
with open(acked_path) as f:
    for line in f:
        u, v = line.split()
        edges.append((int(u), int(v)))
print(f'{len(edges)} acked edges to verify')

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sock_path)

# Drain: batches acked in the loadgen's final moments may still sit in the
# admission queue; wait for queue_depth == 0 before reading (kStats = 5).
for _ in range(200):
    status, body = request(s, 5)
    assert status == 0, f'stats status {status}'
    queue_depth = struct.unpack('<9Q', body)[6]
    if queue_depth == 0:
        break
    time.sleep(0.05)
else:
    sys.exit('ingest queue never drained after restart')

# kHealth (7): the revived daemon must be fully healthy, with a WAL.
status, body = request(s, 7)
assert status == 0, f'health status {status}'
degraded, worker_alive, wal_enabled, wal_healthy = struct.unpack_from('<4B', body, 0)
replayed = struct.unpack_from('<Q', body, 4 + 4 * 8)[0]
assert not degraded, 'daemon is degraded after restart'
assert worker_alive and wal_enabled and wal_healthy, \
    f'bad health: worker={worker_alive} wal={wal_enabled}/{wal_healthy}'
print(f'health ok; {replayed} edges replayed from the WAL')
assert replayed > 0, 'expected a non-empty WAL replay'

# kConnected (2) in kFresh mode (reads the live union-find, so edges applied
# after the restart count too). acked => durable: every acked edge must be
# connected. No sampling — every line in the file is checked.
lost = 0
for (u, v) in edges:
    status, body = request(s, 2, struct.pack('<IIB', u, v, 1))
    (value,) = struct.unpack('<Q', body)
    if status != 0 or value != 1:
        lost += 1
        if lost <= 5:
            print(f'LOST acked edge ({u}, {v}): status={status} value={value}')
if lost:
    sys.exit(f'{lost} of {len(edges)} acked edges missing after crash recovery')
print(f'all {len(edges)} acked edges survived the crash')
PYEOF

echo "== graceful shutdown"
"$CLIENT" --unix="$SOCK" health
"$CLIENT" --unix="$SOCK" shutdown
wait "$CCD_PID"
CCD_EXIT=$?
CCD_PID=
[[ "$CCD_EXIT" -eq 0 ]] || { echo "daemon exit code $CCD_EXIT"; cat "$CCD2_LOG"; exit 1; }
grep -q "^shutdown:" "$CCD2_LOG" || { echo "no shutdown line:"; cat "$CCD2_LOG"; exit 1; }

echo "svc_chaos: OK"
