#!/usr/bin/env bash
# Chaos harness for the connectivity service (docs/ROBUSTNESS.md).
#
# Each scenario follows the same acked => durable script:
#
#   1. starts ecl_ccd with a write-ahead log (and, per scenario, durable
#      checkpoints) plus ECL_FAULT-injected faults,
#   2. hammers it with svc_loadgen --chaos, which records every *acked*
#      ingest batch to a file (flushed per batch, so the file never claims
#      more than the daemon acknowledged),
#   3. SIGKILLs the daemon mid-run — no drain, no fsync-on-exit grace,
#   4. (corrupt scenario) flips bytes in the newest checkpoint file,
#   5. restarts on the same on-disk state and lets the load generator's
#      retry + reconnect policy ride through the outage,
#   6. verifies, over the wire, that every edge of every acked batch is
#      connected in the revived daemon, and
#   7. shuts down gracefully and checks the daemon never went degraded.
#
# Scenario matrix:
#   wal-replay      WAL only, injected socket faults (the PR 3 baseline)
#   mid-checkpoint  checkpoints every 150 ms, each checkpoint write delayed
#                   200 ms so the SIGKILL lands mid-write (torn .tmp image)
#   mid-rotation    8 KiB segments (constant rotation), rotations delayed so
#                   the SIGKILL lands mid-rotation
#   corrupt-newest  checkpoints on; the newest checkpoint is corrupted after
#                   the kill — the loader must fall back to the previous one
#                   (retention keeps segments the *oldest* checkpoint needs)
#   kill-replica    WAL-shipping replica (docs/REPLICATION.md) SIGKILLed
#                   mid-stream: the primary must not notice, and the revived
#                   replica resumes from its local mirror, catches up (lag
#                   observable via kHealth + /metrics), and serves every
#                   acked edge
#   kill-primary-then-promote  the primary is SIGKILLed mid-ingest; the
#                   replica is promoted over the wire (kPromote) and every
#                   batch acked *and replicated* before the kill (frozen via
#                   a wal_bytes catch-up barrier) must be durable and
#                   queryable on the promoted node, which then accepts writes
#
#   observability rider: every daemon run also serves /metrics on an
#   ephemeral port; the harness scrapes and lint-checks the exposition both
#   before the SIGKILL and after the restart, and a final degraded-mode
#   scenario checks the endpoint keeps answering (ecl_svc_degraded 1) after
#   a WAL failure drops the service to read-only.
#
#   usage: svc_chaos.sh <ecl_ccd> <ecl_cc_client> <svc_loadgen>
set -euo pipefail

CCD=$1
CLIENT=$2
LOADGEN=$3
SCRIPT_DIR=$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)

WORK=$(mktemp -d "${TMPDIR:-/tmp}/ecl_svc_chaos.XXXXXX")

cleanup() {
  for pid in "${CCD_PID:-}" "${RCCD_PID:-}" "${LOADGEN_PID:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

wait_ready() {
  local ready=$1 pid=$2 log=$3
  for _ in $(seq 1 100); do
    [[ -f "$ready" ]] && return 0
    kill -0 "$pid" 2>/dev/null || { echo "daemon died:"; cat "$log"; exit 1; }
    sleep 0.1
  done
  echo "daemon never became ready"; cat "$log"; exit 1
}

# Scrapes the exporter named in a ready file, lints the exposition, and
# leaves the body at $WORK/last_scrape.txt for value-level greps.
scrape_and_lint() {
  local ready=$1
  local mport
  mport=$(awk '/^metrics /{print $2}' "$ready")
  [[ -n "$mport" ]] || { echo "no metrics port in $ready:"; cat "$ready"; exit 1; }
  python3 - "http://127.0.0.1:$mport/metrics" "$WORK/last_scrape.txt" <<'PYEOF'
import sys, urllib.request
with urllib.request.urlopen(sys.argv[1], timeout=10) as resp:
    body = resp.read().decode('utf-8', 'replace')
open(sys.argv[2], 'w').write(body)
PYEOF
  python3 "$SCRIPT_DIR/check_metrics_export.py" "$WORK/last_scrape.txt" \
      --require=ecl_svc_up --require=ecl_svc_degraded \
      --require=ecl_wal_enabled --require=ecl_wal_healthy
}

# Wire-level verifier: drains the queue, checks health, then checks every
# acked edge. argv: <sock> <acked-file> <recovery: replay|any|none>
# ('none' skips the recovery-evidence assertions: the target never
# restarted — e.g. a just-promoted replica that got its state by streaming)
VERIFY="$WORK/verify.py"
cat >"$VERIFY" <<'PYEOF'
import socket, struct, sys, time

sock_path, acked_path, recovery = sys.argv[1], sys.argv[2], sys.argv[3]

def recv_exact(s, n):
    buf = b''
    while len(buf) < n:
        chunk = s.recv(n - len(buf))
        if not chunk:
            raise RuntimeError('daemon closed the connection mid-response')
        buf += chunk
    return buf

next_id = 0
def request(s, rtype, body=b''):
    global next_id
    next_id += 1
    payload = struct.pack('<BQ', rtype, next_id) + body
    s.sendall(struct.pack('<I', len(payload)) + payload)
    (n,) = struct.unpack('<I', recv_exact(s, 4))
    resp = recv_exact(s, n)
    rt, rid, status = struct.unpack_from('<BQB', resp, 0)
    assert rid == next_id, f'response id {rid} != request id {next_id}'
    return status, resp[10:]

edges = []
with open(acked_path) as f:
    for line in f:
        u, v = line.split()
        edges.append((int(u), int(v)))
print(f'{len(edges)} acked edges to verify')

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sock_path)

# The kStats body is tag-indexed (u8 format | u16 count | count x (u16 tag,
# u64 value)); a pre-tagging daemon sends exactly 13 x u64 instead. Tags
# match svc::StatsField.
def parse_stats(body):
    fields = {}
    if len(body) == 13 * 8:  # legacy fixed layout, declaration order
        for i, v in enumerate(struct.unpack_from('<13Q', body, 0), start=1):
            fields[i] = v
        return fields
    fmt, count = struct.unpack_from('<BH', body, 0)
    assert fmt == 1, f'unknown stats format byte {fmt}'
    assert len(body) == 3 + 10 * count, (len(body), count)
    off = 3
    for _ in range(count):
        tag, value = struct.unpack_from('<HQ', body, off)
        fields[tag] = value
        off += 10
    return fields

QUEUE_DEPTH, DEGRADED = 7, 14  # svc::StatsField tags

# Drain: batches acked in the loadgen's final moments may still sit in the
# admission queue; wait for queue_depth == 0 before reading (kStats = 5).
for _ in range(200):
    status, body = request(s, 5)
    assert status == 0, f'stats status {status}'
    stats = parse_stats(body)
    if stats.get(QUEUE_DEPTH, 0) == 0:
        break
    time.sleep(0.05)
else:
    sys.exit('ingest queue never drained after restart')
assert stats.get(DEGRADED, 0) == 0, 'stats report a degraded daemon after restart'

# kHealth (7): the revived daemon must be fully healthy, with a WAL. New
# checkpoint fields are appended after the original 4 x u8 + 6 x u64 body.
status, body = request(s, 7)
assert status == 0, f'health status {status}'
degraded, worker_alive, wal_enabled, wal_healthy = struct.unpack_from('<4B', body, 0)
replayed = struct.unpack_from('<Q', body, 4 + 4 * 8)[0]
ckpt_enabled = struct.unpack_from('<B', body, 4 + 6 * 8)[0]
last_ckpt_epoch, = struct.unpack_from('<Q', body, 4 + 6 * 8 + 1 + 8)
wal_segments, = struct.unpack_from('<Q', body, 4 + 6 * 8 + 1 + 3 * 8)
assert not degraded, 'daemon is degraded after restart'
assert worker_alive and wal_enabled and wal_healthy, \
    f'bad health: worker={worker_alive} wal={wal_enabled}/{wal_healthy}'
assert wal_segments >= 1, f'wal enabled but {wal_segments} segments'
print(f'health ok; replayed={replayed} ckpt_epoch={last_ckpt_epoch} '
      f'segments={wal_segments}')
if recovery == 'replay':
    assert replayed > 0, 'expected a non-empty WAL replay'
elif recovery == 'none':
    pass  # live node (never restarted): no recovery evidence to demand
else:
    # Checkpoint scenarios: recovery may come from the checkpoint (epoch>0),
    # the WAL tail, or both — but it must come from somewhere.
    assert replayed > 0 or last_ckpt_epoch > 0, \
        'restart recovered neither a checkpoint nor any WAL records'
if ckpt_enabled and recovery == 'ckpt':
    assert last_ckpt_epoch > 0, 'expected recovery from a checkpoint'

# kConnected (2) in kFresh mode (reads the live union-find, so edges applied
# after the restart count too). acked => durable: every acked edge must be
# connected. No sampling — every line in the file is checked.
lost = 0
for (u, v) in edges:
    status, body = request(s, 2, struct.pack('<IIB', u, v, 1))
    (value,) = struct.unpack('<Q', body)
    if status != 0 or value != 1:
        lost += 1
        if lost <= 5:
            print(f'LOST acked edge ({u}, {v}): status={status} value={value}')
if lost:
    sys.exit(f'{lost} of {len(edges)} acked edges missing after crash recovery')
print(f'all {len(edges)} acked edges survived the crash')
PYEOF

# run_scenario <name> <run1-env> <recovery-mode> <corrupt-newest-ckpt> [daemon args...]
run_scenario() {
  local name=$1 env1=$2 recovery=$3 corrupt=$4
  shift 4
  local dir="$WORK/$name"
  mkdir -p "$dir"
  local sock="$dir/ccd.sock" acked="$dir/acked.txt"
  local log1="$dir/ccd1.log" log2="$dir/ccd2.log" loadlog="$dir/loadgen.log"

  echo "==== scenario: $name"
  echo "== starting ecl_ccd (run 1)"
  env $env1 "$CCD" --vertices=20000 --unix="$sock" --wal-fsync=batch \
      --ready-file="$dir/ready1" --metrics-port=0 "$@" >"$log1" 2>&1 &
  CCD_PID=$!
  wait_ready "$dir/ready1" "$CCD_PID" "$log1"

  echo "== scraping /metrics (run 1, pre-kill)"
  scrape_and_lint "$dir/ready1"
  grep -q "^ecl_svc_up 1$" "$WORK/last_scrape.txt"

  echo "== chaos load (background)"
  "$LOADGEN" --unix="$sock" --threads=3 --duration-ms=5000 --batch=32 \
             --ingest-frac=0.5 --seed=3 --chaos --acked-file="$acked" \
             >"$loadlog" 2>&1 &
  LOADGEN_PID=$!

  sleep 1.5
  echo "== SIGKILL mid-run"
  kill -9 "$CCD_PID"
  wait "$CCD_PID" 2>/dev/null || true
  CCD_PID=

  if [[ "$corrupt" == 1 ]]; then
    echo "== corrupting the newest checkpoint"
    python3 - "$dir" <<'PYEOF'
import glob, sys
files = sorted(glob.glob(sys.argv[1] + '/ckpt.[0-9]*'))
if not files:
    sys.exit('no checkpoint files to corrupt')
newest = files[-1]
with open(newest, 'r+b') as f:
    f.seek(16)  # inside the payload: breaks the CRC
    f.write(b'\xde\xad\xbe\xef')
print(f'corrupted {newest} ({len(files)} checkpoints on disk)')
PYEOF
  fi

  sleep 0.3
  echo "== restarting on the same on-disk state"
  "$CCD" --vertices=20000 --unix="$sock" --wal-fsync=batch \
         --ready-file="$dir/ready2" --metrics-port=0 "$@" >"$log2" 2>&1 &
  CCD_PID=$!
  wait_ready "$dir/ready2" "$CCD_PID" "$log2"
  grep -q "^wal .*replayed" "$log2" || {
    echo "restart did not report WAL replay:"; cat "$log2"; exit 1; }

  echo "== scraping /metrics (run 2, post-restart)"
  scrape_and_lint "$dir/ready2"
  grep -q "^ecl_svc_up 1$" "$WORK/last_scrape.txt"
  grep -q "^ecl_svc_degraded 0$" "$WORK/last_scrape.txt"

  echo "== waiting for the load generator to ride out the outage"
  local loadgen_exit=0
  wait "$LOADGEN_PID" || loadgen_exit=$?
  LOADGEN_PID=
  [[ "$loadgen_exit" -eq 0 ]] || {
    echo "loadgen exit code $loadgen_exit:"; cat "$loadlog"; exit 1; }
  grep -E "resilience:" "$loadlog" || true
  [[ -s "$acked" ]] || { echo "no acked batches recorded"; exit 1; }

  echo "== verifying every acked edge against the revived daemon"
  python3 "$VERIFY" "$sock" "$acked" "$recovery"

  echo "== graceful shutdown"
  "$CLIENT" --unix="$sock" health
  "$CLIENT" --unix="$sock" shutdown
  local ccd_exit=0
  wait "$CCD_PID" || ccd_exit=$?
  CCD_PID=
  [[ "$ccd_exit" -eq 0 ]] || { echo "daemon exit code $ccd_exit"; cat "$log2"; exit 1; }
  grep -q "^shutdown:" "$log2" || { echo "no shutdown line:"; cat "$log2"; exit 1; }
  echo "==== scenario $name: OK"
}

# Baseline (PR 3): WAL only, low-probability socket read/write failures plus
# occasional 2 ms read delays — every client sees torn connections and slow
# responses, and the restart must replay the WAL.
run_scenario wal-replay \
  'ECL_FAULT=svc.net.read=fail,prob=0.003,seed=9;svc.net.write=fail,prob=0.003,seed=11;svc.net.read=delay,arg=2000,prob=0.02,seed=7' \
  replay 0 \
  --wal="$WORK/wal-replay/edges.wal"

# SIGKILL mid-checkpoint: checkpoints every 150 ms, each write stalled 200 ms
# by the fault, so the kill at 1.5 s lands inside a checkpoint write with
# high probability. The torn .tmp must never be loaded.
run_scenario mid-checkpoint \
  'ECL_FAULT=svc.ckpt.write=delay,arg=200000' \
  any 0 \
  --wal="$WORK/mid-checkpoint/edges.wal" \
  --checkpoint="$WORK/mid-checkpoint/ckpt" --checkpoint-interval-ms=150

# SIGKILL mid-rotation: 8 KiB segments force constant rotation; half the
# rotations are stalled 20 ms so the kill lands mid-rotation.
run_scenario mid-rotation \
  'ECL_FAULT=svc.wal.rotate=delay,arg=20000,prob=0.5,seed=5' \
  any 0 \
  --wal="$WORK/mid-rotation/edges.wal" --wal-segment-bytes=8192 \
  --checkpoint="$WORK/mid-rotation/ckpt" --checkpoint-interval-ms=200

# Corrupt newest checkpoint: frequent checkpoints build a chain, the newest
# is corrupted after the kill, and the loader must fall back to the previous
# one — whose WAL segments retention deliberately kept around.
run_scenario corrupt-newest \
  'ECL_FAULT=' \
  any 1 \
  --wal="$WORK/corrupt-newest/edges.wal" \
  --checkpoint="$WORK/corrupt-newest/ckpt" --checkpoint-interval-ms=150

# SIGKILL under a C10K flood: the daemon dies holding thousands of open
# pipelined connections (every one of them left half-open, mid-request),
# restarts on the same WAL, and must still satisfy acked => durable for
# every batch acknowledged before the kill.
echo "==== scenario: c10k-halfopen"
SOFT=$(ulimit -Sn)
HARD=$(ulimit -Hn)
WANT=4096
if [[ "$HARD" != "unlimited" && "$HARD" -lt "$WANT" ]]; then WANT=$HARD; fi
if (( SOFT < WANT )); then ulimit -n "$WANT" || true; fi
LIMIT=$(ulimit -Sn)
HCONNS=1500
if (( LIMIT < 1800 )); then HCONNS=$(( LIMIT - 300 )); fi
HDIR="$WORK/c10k-halfopen"
mkdir -p "$HDIR"
echo "== starting ecl_ccd (fd limit $LIMIT, $HCONNS connections)"
"$CCD" --vertices=20000 --unix="$HDIR/ccd.sock" --wal="$HDIR/edges.wal" \
       --wal-fsync=batch --backlog=1024 --io-threads=4 \
       --ready-file="$HDIR/ready1" --metrics-port=0 >"$HDIR/ccd1.log" 2>&1 &
CCD_PID=$!
wait_ready "$HDIR/ready1" "$CCD_PID" "$HDIR/ccd1.log"

echo "== c10k load (background, long phase so the kill lands mid-flood)"
"$LOADGEN" --unix="$HDIR/ccd.sock" --connections="$HCONNS" --pipeline=4 \
           --io-threads=4 --duration-ms=8000 --ingest-frac=0.4 --batch=8 \
           --seed=13 --acked-file="$HDIR/acked.txt" >"$HDIR/loadgen.log" 2>&1 &
LOADGEN_PID=$!

sleep 3
echo "== SIGKILL with $HCONNS connections open"
kill -9 "$CCD_PID"
wait "$CCD_PID" 2>/dev/null || true
CCD_PID=

echo "== restarting on the same WAL"
"$CCD" --vertices=20000 --unix="$HDIR/ccd.sock" --wal="$HDIR/edges.wal" \
       --wal-fsync=batch --backlog=1024 --io-threads=4 \
       --ready-file="$HDIR/ready2" --metrics-port=0 >"$HDIR/ccd2.log" 2>&1 &
CCD_PID=$!
wait_ready "$HDIR/ready2" "$CCD_PID" "$HDIR/ccd2.log"
grep -q "^wal .*replayed" "$HDIR/ccd2.log" || {
  echo "restart did not report WAL replay:"; cat "$HDIR/ccd2.log"; exit 1; }

echo "== waiting for the load generator (its dead sockets self-close)"
loadgen_exit=0
wait "$LOADGEN_PID" || loadgen_exit=$?
LOADGEN_PID=
[[ "$loadgen_exit" -eq 0 ]] || {
  echo "loadgen exit code $loadgen_exit:"; cat "$HDIR/loadgen.log"; exit 1; }
grep -E "c10k\[" "$HDIR/loadgen.log" || true
[[ -s "$HDIR/acked.txt" ]] || { echo "no acked batches recorded"; exit 1; }

echo "== verifying every acked edge against the revived daemon"
python3 "$VERIFY" "$HDIR/ccd.sock" "$HDIR/acked.txt" replay

"$CLIENT" --unix="$HDIR/ccd.sock" shutdown
ccd_exit=0
wait "$CCD_PID" || ccd_exit=$?
CCD_PID=
[[ "$ccd_exit" -eq 0 ]] || { echo "daemon exit code $ccd_exit"; cat "$HDIR/ccd2.log"; exit 1; }
echo "==== scenario c10k-halfopen: OK"

# Degraded-mode observability: a WAL append failure drops the service to
# read-only; the metrics endpoint is the alerting path and must keep serving
# a valid exposition with ecl_svc_degraded 1.
echo "==== scenario: degraded-exporter"
DDIR="$WORK/degraded"
mkdir -p "$DDIR"
env 'ECL_FAULT=svc.wal.append=fail,times=1,after=1' \
    "$CCD" --vertices=20000 --unix="$DDIR/ccd.sock" --wal="$DDIR/edges.wal" \
    --ready-file="$DDIR/ready" --metrics-port=0 >"$DDIR/ccd.log" 2>&1 &
CCD_PID=$!
wait_ready "$DDIR/ready" "$CCD_PID" "$DDIR/ccd.log"

echo "== healthy baseline scrape"
scrape_and_lint "$DDIR/ready"
grep -q "^ecl_svc_degraded 0$" "$WORK/last_scrape.txt"

echo "== tripping the WAL fault"
"$CLIENT" --unix="$DDIR/ccd.sock" ingest 1 2 2 3   # append pass 0: survives after=1
# This append hits the armed failure: the batch is shed, never falsely acked,
# and the daemon degrades to read-only. ingest exits 2 (kShed) by contract.
ingest_exit=0
"$CLIENT" --unix="$DDIR/ccd.sock" --retries=0 ingest 5 6 || ingest_exit=$?
[[ "$ingest_exit" -eq 2 ]] || { echo "expected shed (2), got $ingest_exit"; exit 1; }
health_exit=0
"$CLIENT" --unix="$DDIR/ccd.sock" health || health_exit=$?
[[ "$health_exit" -eq 2 ]] || { echo "daemon not degraded (health=$health_exit)"; exit 1; }

echo "== degraded scrape: endpoint must keep serving with degraded=1"
scrape_and_lint "$DDIR/ready"
grep -q "^ecl_svc_degraded 1$" "$WORK/last_scrape.txt"
grep -q "^ecl_wal_healthy 0$" "$WORK/last_scrape.txt"
grep -q "^ecl_svc_up 1$" "$WORK/last_scrape.txt"
# Reads still serve while degraded.
"$CLIENT" --unix="$DDIR/ccd.sock" connected 1 3 | grep -qx "connected"

"$CLIENT" --unix="$DDIR/ccd.sock" shutdown
ccd_exit=0
wait "$CCD_PID" || ccd_exit=$?
CCD_PID=
[[ "$ccd_exit" -eq 0 ]] || { echo "daemon exit code $ccd_exit"; cat "$DDIR/ccd.log"; exit 1; }
grep -q "read-only degraded" "$DDIR/ccd.log" || {
  echo "daemon never reported degraded mode:"; cat "$DDIR/ccd.log"; exit 1; }
echo "==== scenario degraded-exporter: OK"

# Waits until a replica daemon reports itself fully caught up (lag_seq and
# lag_ms both 0 — published only after a fetch round that reached the
# primary's active tail). Call only once the primary has stopped ingesting.
wait_caught_up() {
  local rsock=$1
  for _ in $(seq 1 150); do
    local out lag_seq lag_ms
    out=$("$CLIENT" --unix="$rsock" health 2>/dev/null || true)
    lag_seq=$(awk '/^replica_lag_seq/{print $2}' <<<"$out")
    lag_ms=$(awk '/^replica_lag_ms/{print $2}' <<<"$out")
    [[ "$lag_seq" == 0 && "$lag_ms" == 0 ]] && return 0
    sleep 0.2
  done
  echo "replica never caught up; last health:"; "$CLIENT" --unix="$rsock" health || true
  return 1
}

# SIGKILL the replica mid-stream: the primary must be unaffected, and the
# revived replica (same mirror dirs) must resume, catch up, and serve every
# edge the *primary* acked. --replica-hold-ms is generous so the dead
# replica's segments survive the outage and the revival streams the gap
# instead of re-bootstrapping.
echo "==== scenario: kill-replica"
KDIR="$WORK/kill-replica"
mkdir -p "$KDIR/p" "$KDIR/r"
echo "== starting primary"
"$CCD" --vertices=20000 --unix="$KDIR/p.sock" --wal="$KDIR/p/wal" \
       --wal-fsync=batch --wal-segment-bytes=32768 \
       --checkpoint="$KDIR/p/ckpt" --checkpoint-interval-ms=300 \
       --replica-hold-ms=30000 \
       --ready-file="$KDIR/ready_p" --metrics-port=0 >"$KDIR/p.log" 2>&1 &
CCD_PID=$!
wait_ready "$KDIR/ready_p" "$CCD_PID" "$KDIR/p.log"

echo "== starting replica"
"$CCD" --vertices=20000 --unix="$KDIR/r.sock" --replica-of="$KDIR/p.sock" \
       --wal="$KDIR/r/wal" --checkpoint="$KDIR/r/ckpt" \
       --replica-fetch-interval-ms=25 \
       --ready-file="$KDIR/ready_r1" --metrics-port=0 >"$KDIR/r1.log" 2>&1 &
RCCD_PID=$!
wait_ready "$KDIR/ready_r1" "$RCCD_PID" "$KDIR/r1.log"

echo "== scraping replica /metrics (must export role=replica)"
scrape_and_lint "$KDIR/ready_r1"
grep -q "^ecl_svc_role 1$" "$WORK/last_scrape.txt"

echo "== chaos load against the primary (background)"
"$LOADGEN" --unix="$KDIR/p.sock" --threads=3 --duration-ms=5000 --batch=32 \
           --ingest-frac=0.5 --seed=17 --chaos --acked-file="$KDIR/acked.txt" \
           >"$KDIR/loadgen.log" 2>&1 &
LOADGEN_PID=$!

sleep 1.5
echo "== SIGKILL the replica mid-stream"
kill -9 "$RCCD_PID"
wait "$RCCD_PID" 2>/dev/null || true
RCCD_PID=

echo "== primary must be unaffected"
"$CLIENT" --unix="$KDIR/p.sock" ping | grep -qx "pong"
health_exit=0
"$CLIENT" --unix="$KDIR/p.sock" health >/dev/null || health_exit=$?
[[ "$health_exit" -eq 0 ]] || { echo "primary degraded after replica death"; exit 1; }

sleep 0.5
echo "== reviving the replica on the same mirror"
"$CCD" --vertices=20000 --unix="$KDIR/r.sock" --replica-of="$KDIR/p.sock" \
       --wal="$KDIR/r/wal" --checkpoint="$KDIR/r/ckpt" \
       --replica-fetch-interval-ms=25 \
       --ready-file="$KDIR/ready_r2" --metrics-port=0 >"$KDIR/r2.log" 2>&1 &
RCCD_PID=$!
wait_ready "$KDIR/ready_r2" "$RCCD_PID" "$KDIR/r2.log"

echo "== waiting for the load generator"
loadgen_exit=0
wait "$LOADGEN_PID" || loadgen_exit=$?
LOADGEN_PID=
[[ "$loadgen_exit" -eq 0 ]] || {
  echo "loadgen exit code $loadgen_exit:"; cat "$KDIR/loadgen.log"; exit 1; }
[[ -s "$KDIR/acked.txt" ]] || { echo "no acked batches recorded"; exit 1; }

echo "== waiting for the revived replica to catch up"
wait_caught_up "$KDIR/r.sock"
scrape_and_lint "$KDIR/ready_r2"
grep -q "^ecl_svc_role 1$" "$WORK/last_scrape.txt"
grep -q "^ecl_svc_replica_lag_seq 0$" "$WORK/last_scrape.txt"

echo "== verifying every acked edge on the replica"
python3 "$VERIFY" "$KDIR/r.sock" "$KDIR/acked.txt" any

echo "== primary exports the connected replica"
scrape_and_lint "$KDIR/ready_p"
grep -Eq "^ecl_svc_replicas_connected [1-9]" "$WORK/last_scrape.txt"

echo "== graceful shutdown (replica, then primary)"
"$CLIENT" --unix="$KDIR/r.sock" shutdown
rccd_exit=0
wait "$RCCD_PID" || rccd_exit=$?
RCCD_PID=
[[ "$rccd_exit" -eq 0 ]] || { echo "replica exit code $rccd_exit"; cat "$KDIR/r2.log"; exit 1; }
"$CLIENT" --unix="$KDIR/p.sock" shutdown
ccd_exit=0
wait "$CCD_PID" || ccd_exit=$?
CCD_PID=
[[ "$ccd_exit" -eq 0 ]] || { echo "primary exit code $ccd_exit"; cat "$KDIR/p.log"; exit 1; }
echo "==== scenario kill-replica: OK"

# Failover: SIGKILL the primary mid-ingest, promote the replica over the
# wire, and require every batch acked *and shipped* before the kill to be
# queryable on the promoted node. The frozen acked set is fenced by a
# wal_bytes barrier: freeze the file, sample the primary's wal_bytes W,
# wait until the replica's mirrored wal_bytes >= W (no checkpoints in this
# run, so the primary never retires segments and the two byte counts are
# directly comparable) — then everything frozen is provably on the replica.
echo "==== scenario: kill-primary-then-promote"
FDIR="$WORK/kill-primary"
mkdir -p "$FDIR/p" "$FDIR/r"
echo "== starting primary (WAL only: bootstrap-without-checkpoint path)"
"$CCD" --vertices=20000 --unix="$FDIR/p.sock" --wal="$FDIR/p/wal" \
       --wal-fsync=batch \
       --ready-file="$FDIR/ready_p" --metrics-port=0 >"$FDIR/p.log" 2>&1 &
CCD_PID=$!
wait_ready "$FDIR/ready_p" "$CCD_PID" "$FDIR/p.log"

echo "== starting replica"
"$CCD" --vertices=20000 --unix="$FDIR/r.sock" --replica-of="$FDIR/p.sock" \
       --wal="$FDIR/r/wal" --checkpoint="$FDIR/r/ckpt" \
       --replica-fetch-interval-ms=25 \
       --ready-file="$FDIR/ready_r" --metrics-port=0 >"$FDIR/r.log" 2>&1 &
RCCD_PID=$!
wait_ready "$FDIR/ready_r" "$RCCD_PID" "$FDIR/r.log"

echo "== chaos load against the primary (background)"
# --retries=3 (not the chaos default 20): the primary is never coming back,
# so a 20-deep retry ladder per op would stall the deadline check for ~10 s.
"$LOADGEN" --unix="$FDIR/p.sock" --threads=3 --duration-ms=8000 --batch=32 \
           --ingest-frac=0.5 --seed=23 --chaos --retries=3 \
           --acked-file="$FDIR/acked.txt" >"$FDIR/loadgen.log" 2>&1 &
LOADGEN_PID=$!

sleep 2
echo "== freezing the acked set and fencing it on the replica"
cp "$FDIR/acked.txt" "$FDIR/acked_frozen.txt"
[[ -s "$FDIR/acked_frozen.txt" ]] || { echo "no acked batches to freeze"; exit 1; }
PRIMARY_WAL_BYTES=$("$CLIENT" --unix="$FDIR/p.sock" health | awk '/^wal_bytes/{print $2}')
[[ -n "$PRIMARY_WAL_BYTES" ]] || { echo "no wal_bytes in primary health"; exit 1; }
caught=0
for _ in $(seq 1 100); do
  RB=$("$CLIENT" --unix="$FDIR/r.sock" health 2>/dev/null | awk '/^wal_bytes/{print $2}')
  if [[ -n "$RB" && "$RB" -ge "$PRIMARY_WAL_BYTES" ]]; then caught=1; break; fi
  sleep 0.1
done
[[ "$caught" -eq 1 ]] || { echo "replica never reached wal_bytes $PRIMARY_WAL_BYTES"; exit 1; }
echo "frozen $(wc -l <"$FDIR/acked_frozen.txt") acked edges behind wal_bytes $PRIMARY_WAL_BYTES"

echo "== SIGKILL the primary mid-ingest"
kill -9 "$CCD_PID"
wait "$CCD_PID" 2>/dev/null || true
CCD_PID=

echo "== writes on the un-promoted replica must bounce with not_primary"
ingest_exit=0
"$CLIENT" --unix="$FDIR/r.sock" --retries=0 ingest 1 2 || ingest_exit=$?
[[ "$ingest_exit" -eq 2 ]] || { echo "expected not_primary (2), got $ingest_exit"; exit 1; }

echo "== promoting the replica over the wire"
"$CLIENT" --unix="$FDIR/r.sock" promote | grep -qx "promoted"
scrape_and_lint "$FDIR/ready_r"
grep -q "^ecl_svc_role 0$" "$WORK/last_scrape.txt"

echo "== the promoted node accepts writes"
"$CLIENT" --unix="$FDIR/r.sock" ingest 1 2 2 3
"$CLIENT" --unix="$FDIR/r.sock" connected 1 3 | grep -qx "connected"

echo "== waiting for the load generator (its primary is gone for good)"
loadgen_exit=0
wait "$LOADGEN_PID" || loadgen_exit=$?
LOADGEN_PID=
[[ "$loadgen_exit" -eq 0 ]] || {
  echo "loadgen exit code $loadgen_exit:"; cat "$FDIR/loadgen.log"; exit 1; }

echo "== verifying every frozen acked edge on the promoted node"
python3 "$VERIFY" "$FDIR/r.sock" "$FDIR/acked_frozen.txt" none

echo "== graceful shutdown"
"$CLIENT" --unix="$FDIR/r.sock" shutdown
rccd_exit=0
wait "$RCCD_PID" || rccd_exit=$?
RCCD_PID=
[[ "$rccd_exit" -eq 0 ]] || { echo "promoted node exit code $rccd_exit"; cat "$FDIR/r.log"; exit 1; }
echo "==== scenario kill-primary-then-promote: OK"

echo "svc_chaos: OK"
