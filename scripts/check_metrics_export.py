#!/usr/bin/env python3
"""Validate a Prometheus text-exposition body from the ecl_ccd exporter.

Reads the exposition either from a file, stdin, or straight off a running
exporter (--url, stdlib urllib only), then lints it:

  * every sample line parses as `name{labels} value` with a valid metric name
  * every sampled family has a preceding `# TYPE` line, and the declared
    type is one this exporter emits (counter, gauge, histogram)
  * histogram `_bucket{le=...}` series are cumulative (non-decreasing in
    bound order), end with le="+Inf", and the +Inf count equals `_count`
  * counter and gauge values are finite numbers; counters are non-negative
  * families named with --require (repeatable) are present

Exit codes: 0 clean, 1 lint failure, 2 usage/fetch error.

Usage:
  check_metrics_export.py --url=http://127.0.0.1:9464/metrics --require=ecl_svc_up
  curl -s localhost:9464/metrics | check_metrics_export.py --require=ecl_svc_epoch
  check_metrics_export.py scrape.txt
"""
import math
import re
import sys
import urllib.request

NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
# name, optional {labels}, value — the exporter never emits timestamps.
SAMPLE_RE = re.compile(r"^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^}]*\})?\s+(\S+)$")
KNOWN_TYPES = ("counter", "gauge", "histogram")


def base_family(name):
    """Maps a sample name onto the family its # TYPE line declares."""
    for suffix in ("_bucket", "_sum", "_count"):
        if name.endswith(suffix):
            return name[: -len(suffix)]
    return name


def parse_le(labels):
    if not labels:
        return None
    m = re.search(r'le="([^"]*)"', labels)
    return m.group(1) if m else None


def lint(text):
    errors = []
    types = {}          # family -> declared type
    buckets = {}        # family -> list of (le_string, count) in order
    counts = {}         # family -> _count value
    sampled = set()     # families that produced at least one sample line

    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("# TYPE "):
            parts = line.split()
            if len(parts) != 4:
                errors.append(f"line {lineno}: malformed TYPE line: {line!r}")
                continue
            _, _, family, mtype = parts
            if not NAME_RE.match(family):
                errors.append(f"line {lineno}: invalid family name {family!r}")
            if mtype not in KNOWN_TYPES:
                errors.append(f"line {lineno}: unknown type {mtype!r} for {family}")
            if family in types:
                errors.append(f"line {lineno}: duplicate TYPE for {family}")
            types[family] = mtype
            continue
        if line.startswith("#"):
            continue  # comments are fine
        m = SAMPLE_RE.match(line)
        if not m:
            errors.append(f"line {lineno}: unparseable sample: {line!r}")
            continue
        name, labels, raw_value = m.groups()
        family = base_family(name)
        sampled.add(family)
        try:
            value = float(raw_value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {raw_value!r}")
            continue
        if math.isnan(value) or math.isinf(value):
            errors.append(f"line {lineno}: non-finite value for {name}")
            continue
        if family not in types:
            errors.append(f"line {lineno}: sample {name} has no preceding # TYPE")
            continue
        mtype = types[family]
        if mtype == "counter" and value < 0:
            errors.append(f"line {lineno}: counter {name} is negative ({value})")
        if mtype == "histogram":
            if name.endswith("_bucket"):
                le = parse_le(labels)
                if le is None:
                    errors.append(f"line {lineno}: bucket without le label: {line!r}")
                else:
                    buckets.setdefault(family, []).append((le, value))
            elif name.endswith("_count"):
                counts[family] = value
        elif name.endswith("_bucket"):
            errors.append(f"line {lineno}: _bucket sample under non-histogram {family}")

    for family, series in sorted(buckets.items()):
        les = [le for le, _ in series]
        if les[-1] != "+Inf":
            errors.append(f"{family}: bucket series does not end with le=\"+Inf\"")
        prev = -1.0
        for le, count in series:
            if count < prev:
                errors.append(
                    f"{family}: bucket le=\"{le}\" count {count} decreases "
                    f"(cumulative buckets must be non-decreasing)")
            prev = count
        finite = [float(le) for le, _ in series if le != "+Inf"]
        if finite != sorted(finite):
            errors.append(f"{family}: bucket bounds are not ascending: {finite}")
        if family in counts and les[-1] == "+Inf" and series[-1][1] != counts[family]:
            errors.append(
                f"{family}: le=\"+Inf\" bucket {series[-1][1]} != _count {counts[family]}")

    for family, mtype in sorted(types.items()):
        if mtype == "histogram" and family in sampled and family not in buckets:
            errors.append(f"{family}: histogram family has no _bucket samples")

    return errors, sampled


def main():
    url = None
    requires = []
    path = None
    for arg in sys.argv[1:]:
        if arg.startswith("--url="):
            url = arg[len("--url="):]
        elif arg.startswith("--require="):
            requires.append(arg[len("--require="):])
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 2
        elif arg.startswith("-"):
            print(f"error: unknown flag {arg}", file=sys.stderr)
            return 2
        else:
            path = arg

    if url is not None:
        try:
            with urllib.request.urlopen(url, timeout=10) as resp:
                text = resp.read().decode("utf-8", "replace")
        except OSError as e:
            print(f"error: fetch {url} failed: {e}", file=sys.stderr)
            return 2
    elif path is not None:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    else:
        text = sys.stdin.read()

    if not text.strip():
        print("error: empty exposition body", file=sys.stderr)
        return 1

    errors, sampled = lint(text)
    for family in requires:
        if family not in sampled:
            errors.append(f"required family missing: {family}")

    if errors:
        for e in errors:
            print(f"FAIL: {e}")
        return 1
    print(f"ok: {len(sampled)} families, {len(requires)} required present")
    return 0


if __name__ == "__main__":
    sys.exit(main())
