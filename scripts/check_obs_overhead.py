#!/usr/bin/env python3
"""Check that the ecl::obs record sites cost <= 5% on the ECL-CC hot path.

Runs the obs_overhead_on (instrumented default build) and obs_overhead_off
(ECL_OBS_DISABLED) binaries alternately several times, takes the best median
for each, and fails if the instrumented build is more than 5% (plus a small
absolute epsilon for sub-millisecond noise) slower than the disabled build.
Also asserts both builds produce identical label checksums — the record
sites must not change the algorithm's output.

Usage: check_obs_overhead.py <obs_overhead_on> <obs_overhead_off> [extra args...]
"""
import subprocess
import sys

ROUNDS = 4
REL_THRESHOLD = 1.05
ABS_EPSILON_MS = 2.0  # absolute slack for sub-millisecond medians / noisy CI


def run(binary, extra):
    out = subprocess.run([binary] + extra, check=True, capture_output=True,
                         text=True).stdout
    fields = dict(line.split("=", 1) for line in out.splitlines() if "=" in line)
    return float(fields["median_ms"]), fields["labels_checksum"]


def main():
    if len(sys.argv) < 3:
        print(__doc__)
        return 2
    on_bin, off_bin, extra = sys.argv[1], sys.argv[2], sys.argv[3:]

    on_ms, off_ms = [], []
    on_sum, off_sum = None, None
    for _ in range(ROUNDS):
        # Alternate so slow drift (thermal, noisy neighbours) hits both evenly.
        ms, on_sum = run(on_bin, extra)
        on_ms.append(ms)
        ms, off_sum = run(off_bin, extra)
        off_ms.append(ms)

    best_on, best_off = min(on_ms), min(off_ms)
    print(f"instrumented: best median {best_on:.3f} ms  (all: "
          f"{', '.join(f'{m:.3f}' for m in on_ms)})")
    print(f"disabled:     best median {best_off:.3f} ms  (all: "
          f"{', '.join(f'{m:.3f}' for m in off_ms)})")

    if on_sum != off_sum:
        print(f"FAIL: label checksums differ (on={on_sum}, off={off_sum}) — "
              "record sites changed the algorithm's output")
        return 1
    print(f"label checksums identical ({on_sum})")

    limit = best_off * REL_THRESHOLD + ABS_EPSILON_MS
    if best_on > limit:
        print(f"FAIL: instrumented {best_on:.3f} ms exceeds limit {limit:.3f} ms "
              f"({REL_THRESHOLD:.2f}x disabled + {ABS_EPSILON_MS} ms)")
        return 1
    overhead = (best_on / best_off - 1.0) * 100.0 if best_off > 0 else 0.0
    print(f"OK: overhead {overhead:+.1f}% within limit")
    return 0


if __name__ == "__main__":
    sys.exit(main())
