#!/usr/bin/env bash
# C10K smoke for the event-loop server front end (docs/EXECUTOR.md): one
# daemon, thousands of concurrent pipelined connections, bounded fd budget.
#
#   1. caps the fd soft limit (the point is to prove thousands of sockets
#      fit a bounded process, not to borrow an unlimited one),
#   2. starts ecl_ccd with a WAL on a Unix socket,
#   3. runs svc_loadgen in C10K mode through two phases (64 connections,
#      then >= 2000), recording every acked ingest batch,
#   4. snapshots the ecl_cc_top connections panel mid-run and checks the
#      daemon reports the open-connection flood,
#   5. requires every phase to connect every socket and finish with zero
#      unanswered ops, and 2000-connection throughput within 2x of the
#      64-connection figure,
#   6. verifies over the wire that every acked edge is connected (zero
#      acked-unacked divergence), and
#   7. shuts down gracefully.
#
#   usage: svc_c10k.sh <ecl_ccd> <ecl_cc_client> <svc_loadgen> <ecl_cc_top>
set -euo pipefail

CCD=$1
CLIENT=$2
LOADGEN=$3
TOP=$4

# Bounded fd budget: 4096 fds comfortably hold 2000 sockets plus the
# daemon's own files. Scale the phase down (never silently skip it) when
# the hard limit is tighter than that.
TARGET_FDS=4096
HARD=$(ulimit -Hn)
if [[ "$HARD" != "unlimited" && "$HARD" -lt "$TARGET_FDS" ]]; then
  TARGET_FDS=$HARD
fi
ulimit -n "$TARGET_FDS"
CONNS=2000
if (( TARGET_FDS < 2200 )); then
  CONNS=$(( TARGET_FDS - 200 ))
fi
echo "== fd soft limit $TARGET_FDS, big phase $CONNS connections"

WORK=$(mktemp -d "${TMPDIR:-/tmp}/ecl_svc_c10k.XXXXXX")
SOCK="$WORK/ccd.sock"
READY="$WORK/ready.txt"
CCD_LOG="$WORK/ccd.log"
LOAD_LOG="$WORK/loadgen.log"
ACKED="$WORK/acked.txt"
REPORT="$WORK/report.json"

cleanup() {
  for pid in "${CCD_PID:-}" "${LG_PID:-}"; do
    if [[ -n "$pid" ]] && kill -0 "$pid" 2>/dev/null; then
      kill -9 "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "$WORK"
}
trap cleanup EXIT

echo "== starting ecl_ccd (WAL on, large backlog for the connect burst)"
"$CCD" --vertices=20000 --unix="$SOCK" --wal="$WORK/edges.wal" \
       --wal-fsync=batch --backlog=1024 --io-threads=4 \
       --ready-file="$READY" --metrics-port=0 >"$CCD_LOG" 2>&1 &
CCD_PID=$!
for _ in $(seq 1 100); do
  [[ -f "$READY" ]] && break
  kill -0 "$CCD_PID" 2>/dev/null || { echo "daemon died:"; cat "$CCD_LOG"; exit 1; }
  sleep 0.1
done
[[ -f "$READY" ]] || { echo "daemon never became ready"; cat "$CCD_LOG"; exit 1; }

echo "== c10k load: phases 64 and $CONNS connections (background)"
"$LOADGEN" --unix="$SOCK" --connections=64,"$CONNS" --pipeline=8 \
           --io-threads=4 --duration-ms=2000 --ingest-frac=0.3 --batch=16 \
           --seed=5 --acked-file="$ACKED" --report="$REPORT" \
           >"$LOAD_LOG" 2>&1 &
LG_PID=$!

echo "== watching the connections panel for the flood"
SEEN_OPEN=0
for _ in $(seq 1 60); do
  if ! kill -0 "$LG_PID" 2>/dev/null; then break; fi
  "$TOP" --unix="$SOCK" --plain --iterations=1 >"$WORK/top.txt" 2>/dev/null || true
  OPEN=$(awk '/^conns/{print $2}' "$WORK/top.txt")
  if [[ -n "${OPEN:-}" ]] && (( OPEN > 1 )); then
    SEEN_OPEN=$OPEN
    break
  fi
  sleep 0.2
done
(( SEEN_OPEN > 1 )) || { echo "dashboard never showed open connections"; cat "$WORK/top.txt" 2>/dev/null || true; exit 1; }
grep -q "^evictions" "$WORK/top.txt" || { echo "no evictions panel:"; cat "$WORK/top.txt"; exit 1; }
echo "   conns panel live: $SEEN_OPEN open while loading"

LG_EXIT=0
wait "$LG_PID" || LG_EXIT=$?
LG_PID=
sed 's/^/   loadgen| /' "$LOAD_LOG"
[[ "$LG_EXIT" -eq 0 ]] || { echo "loadgen exit code $LG_EXIT"; exit 1; }

echo "== validating phase results"
python3 - "$LOAD_LOG" "$REPORT" "$CONNS" <<'PYEOF'
import json, re, sys

log, report_path, big = open(sys.argv[1]).read(), sys.argv[2], int(sys.argv[3])

phases = {}
for m in re.finditer(
        r'c10k\[(\d+) conns, (\d+) connected\]: (\d+) ops in \d+ ms '
        r'\((\d+) ops/s\), p99=([\d.]+) us, (\d+) shed, (\d+) errors', log):
    req, conn, ops, thr, p99, shed, errors = m.groups()
    phases[int(req)] = dict(connected=int(conn), ops=int(ops),
                            throughput=int(thr), p99=float(p99),
                            errors=int(errors))
assert sorted(phases) == [64, big], f'phases seen: {sorted(phases)}'
for req, ph in phases.items():
    assert ph['connected'] == req, f'{req}: only {ph["connected"]} connected'
    assert ph['ops'] > 0, f'{req}: no ops completed'
    assert ph['errors'] == 0, f'{req}: {ph["errors"]} unanswered/failed ops'

# Scalability bar: the big phase holds at least half the 64-conn throughput.
small, large = phases[64]['throughput'], phases[big]['throughput']
assert large * 2 >= small, \
    f'throughput collapsed: {large} ops/s at {big} conns vs {small} at 64'
print(f'phases ok: 64 conns {small} ops/s, {big} conns {large} ops/s '
      f'(p99 {phases[big]["p99"]:.0f} us)')

r = json.load(open(report_path))
assert r['bench'] == 'svc_loadgen', r['bench']
cells = {c['code'] for c in r['cells'] if c['graph'] == 'c10k'}
assert cells == {'conns_64', f'conns_{big}'}, cells
metrics = {m['name']: m for m in r['metrics']}
for n in (64, big):
    hist = metrics[f'ecl.loadgen.c10k.op_us.c{n}']
    assert hist['count'] > 0 and 0 < hist['p50'] <= hist['p99'], hist
    assert metrics[f'ecl.loadgen.c10k.c{n}.throughput_ops']['value'] > 0
print('report ok: per-phase histograms and throughput gauges present')
PYEOF

echo "== verifying every acked edge against the live daemon"
[[ -s "$ACKED" ]] || { echo "no acked batches recorded"; exit 1; }
python3 - "$SOCK" "$ACKED" <<'PYEOF'
import socket, struct, sys, time

sock_path, acked_path = sys.argv[1], sys.argv[2]

def recv_exact(s, n):
    buf = b''
    while len(buf) < n:
        chunk = s.recv(n - len(buf))
        if not chunk:
            raise RuntimeError('daemon closed the connection mid-response')
        buf += chunk
    return buf

next_id = 0
def request(s, rtype, body=b''):
    global next_id
    next_id += 1
    payload = struct.pack('<BQ', rtype, next_id) + body
    s.sendall(struct.pack('<I', len(payload)) + payload)
    (n,) = struct.unpack('<I', recv_exact(s, 4))
    resp = recv_exact(s, n)
    rt, rid, status = struct.unpack_from('<BQB', resp, 0)
    assert rid == next_id, f'response id {rid} != request id {next_id}'
    return status, resp[10:]

edges = []
with open(acked_path) as f:
    for line in f:
        u, v = line.split()
        edges.append((int(u), int(v)))
print(f'{len(edges)} acked edges to verify')

s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
s.connect(sock_path)

def parse_stats(body):
    fmt, count = struct.unpack_from('<BH', body, 0)
    assert fmt == 1, f'unknown stats format byte {fmt}'
    fields = {}
    off = 3
    for _ in range(count):
        tag, value = struct.unpack_from('<HQ', body, off)
        fields[tag] = value
        off += 10
    return fields

QUEUE_DEPTH = 7  # svc::StatsField tag
for _ in range(200):  # drain: late acks may still sit in the admission queue
    status, body = request(s, 5)
    assert status == 0, f'stats status {status}'
    if parse_stats(body).get(QUEUE_DEPTH, 0) == 0:
        break
    time.sleep(0.05)
else:
    sys.exit('ingest queue never drained')

lost = 0
for (u, v) in edges:
    status, body = request(s, 2, struct.pack('<IIB', u, v, 1))  # kFresh
    (value,) = struct.unpack('<Q', body)
    if status != 0 or value != 1:
        lost += 1
        if lost <= 5:
            print(f'LOST acked edge ({u}, {v}): status={status} value={value}')
if lost:
    sys.exit(f'{lost} of {len(edges)} acked edges missing')
print(f'all {len(edges)} acked edges connected: zero acked-unacked divergence')
PYEOF

echo "== graceful shutdown"
"$CLIENT" --unix="$SOCK" shutdown
CCD_EXIT=0
wait "$CCD_PID" || CCD_EXIT=$?
CCD_PID=
[[ "$CCD_EXIT" -eq 0 ]] || { echo "daemon exit code $CCD_EXIT"; cat "$CCD_LOG"; exit 1; }
grep -q "^shutdown:" "$CCD_LOG" || { echo "no shutdown line:"; cat "$CCD_LOG"; exit 1; }

echo "svc c10k: PASS"
