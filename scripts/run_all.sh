#!/usr/bin/env bash
# Full reproduction driver: build, test, run every table/figure benchmark,
# and render the figures as SVGs.
#
#   scripts/run_all.sh [--scale=F]      # extra args are passed to the benches
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build --output-on-failure 2>&1 | tee test_output.txt

mkdir -p bench_results
{
  for b in build/bench/*; do
    [ -x "$b" ] && [ -f "$b" ] || continue
    echo "===== $(basename "$b") ====="
    if [ "$(basename "$b")" = micro_dsu ]; then
      "$b"
    else
      "$b" --csv-dir=bench_results \
           --report="bench_results/$(basename "$b")_report.json" "$@"
    fi
  done
} 2>&1 | tee bench_output.txt

python3 scripts/plot_figures.py bench_results bench_results
echo "done: tables in bench_output.txt, CSVs + SVGs in bench_results/"
