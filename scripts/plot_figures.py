#!/usr/bin/env python3
"""Render the reproduction's benchmark CSVs as SVG bar charts.

Reads the CSV files written by the bench binaries (``--csv-dir``) and emits
one grouped-bar SVG per figure, visually mirroring the paper's Figures 7-17
(log-scale, higher-is-worse, reference line at 1.0). No third-party
dependencies — plain-Python SVG generation.

Usage:
    bench/<binary> --csv-dir=bench_results      # produce the CSVs first
    python3 scripts/plot_figures.py bench_results [output_dir]
"""
from __future__ import annotations

import csv
import math
import sys
from pathlib import Path

# Categorical palette (colorblind-friendly).
PALETTE = ["#4477AA", "#EE6677", "#228833", "#CCBB44", "#66CCEE", "#AA3377", "#BBBBBB"]

# Figures rendered as normalized (log-scale) grouped bars: filename -> title.
RATIO_FIGURES = {
    "fig07_init": "Fig. 7: runtime relative to Init3 (simulated Titan X)",
    "fig08_jump": "Fig. 8: runtime relative to Jump4 (simulated Titan X)",
    "fig09_fini": "Fig. 9: runtime relative to Fini3 (simulated Titan X)",
    "fig11_gpu_titanx": "Fig. 11: Titan X (simulated) runtime relative to ECL-CC",
    "fig12_gpu_k40": "Fig. 12: K40 (simulated) runtime relative to ECL-CC",
    "fig13_cpu_parallel": "Fig. 13: parallel CPU runtime relative to ECL-CComp",
    "fig14_cpu_parallel2": "Fig. 14: parallel CPU runtime (reduced threads)",
    "fig15_cpu_serial": "Fig. 15: serial CPU runtime relative to ECL-CCser",
    "fig16_cpu_serial2": "Fig. 16: serial CPU runtime (second pass)",
}

# Stacked-percentage figure.
STACKED_FIGURES = {
    "fig10_breakdown": "Fig. 10: ECL-CC runtime distribution among the five kernels",
}


def read_csv(path: Path) -> tuple[list[str], list[list[str]]]:
    with path.open(newline="") as fh:
        rows = list(csv.reader(fh))
    if not rows:
        raise ValueError(f"{path} is empty")
    return rows[0], rows[1:]


def esc(text: str) -> str:
    return text.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


class Svg:
    """Tiny SVG document builder."""

    def __init__(self, width: int, height: int) -> None:
        self.width = width
        self.height = height
        self.parts: list[str] = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{width}" '
            f'height="{height}" viewBox="0 0 {width} {height}">',
            f'<rect width="{width}" height="{height}" fill="white"/>',
        ]

    def rect(self, x: float, y: float, w: float, h: float, fill: str) -> None:
        self.parts.append(
            f'<rect x="{x:.1f}" y="{y:.1f}" width="{w:.2f}" height="{h:.2f}" fill="{fill}"/>'
        )

    def line(self, x1: float, y1: float, x2: float, y2: float, stroke: str,
             width: float = 1.0, dash: str = "") -> None:
        dash_attr = f' stroke-dasharray="{dash}"' if dash else ""
        self.parts.append(
            f'<line x1="{x1:.1f}" y1="{y1:.1f}" x2="{x2:.1f}" y2="{y2:.1f}" '
            f'stroke="{stroke}" stroke-width="{width}"{dash_attr}/>'
        )

    def text(self, x: float, y: float, content: str, size: int = 11, anchor: str = "middle",
             rotate: float = 0.0, bold: bool = False) -> None:
        transform = f' transform="rotate({rotate} {x:.1f} {y:.1f})"' if rotate else ""
        weight = ' font-weight="bold"' if bold else ""
        self.parts.append(
            f'<text x="{x:.1f}" y="{y:.1f}" font-family="Helvetica,Arial,sans-serif" '
            f'font-size="{size}" text-anchor="{anchor}"{weight}{transform}>'
            f"{esc(content)}</text>"
        )

    def save(self, path: Path) -> None:
        self.parts.append("</svg>")
        path.write_text("\n".join(self.parts))


def parse_cell(cell: str) -> float | None:
    try:
        return float(cell)
    except ValueError:
        return None  # "n/a"


def render_ratio_figure(csv_path: Path, title: str, out_path: Path) -> None:
    header, rows = read_csv(csv_path)
    codes = header[1:]
    graphs = [row[0] for row in rows]
    values = [[parse_cell(c) for c in row[1:]] for row in rows]

    finite = [v for row in values for v in row if v is not None and v > 0]
    if not finite:
        return
    vmax = max(finite)
    vmin = min(min(finite), 0.5)
    log_top = math.ceil(math.log2(vmax)) + 1
    log_bot = math.floor(math.log2(vmin))

    margin_l, margin_r, margin_t, margin_b = 60, 20, 60, 110
    group_w = max(26, 11 * len(codes))
    plot_w = group_w * len(graphs)
    plot_h = 300
    svg = Svg(margin_l + plot_w + margin_r, margin_t + plot_h + margin_b)
    svg.text(margin_l + plot_w / 2, 25, title, size=14, bold=True)

    def y_of(value: float) -> float:
        frac = (math.log2(value) - log_bot) / (log_top - log_bot)
        return margin_t + plot_h * (1 - frac)

    # Gridlines at powers of two (the paper's axis style).
    for e in range(log_bot, log_top + 1):
        y = y_of(2.0**e)
        svg.line(margin_l, y, margin_l + plot_w, y, "#dddddd")
        svg.text(margin_l - 6, y + 4, f"{2.0 ** e:g}", size=10, anchor="end")
    svg.line(margin_l, y_of(1.0), margin_l + plot_w, y_of(1.0), "#333333", 1.2, dash="4,3")

    bar_w = (group_w - 6) / len(codes)
    for gi, graph in enumerate(graphs):
        x0 = margin_l + gi * group_w + 3
        for ci, _ in enumerate(codes):
            v = values[gi][ci]
            if v is None or v <= 0:
                svg.text(x0 + ci * bar_w + bar_w / 2, y_of(1.0) - 4, "x", size=9)
                continue
            y = y_of(v)
            base = y_of(1.0)
            top, height = (y, base - y) if v >= 1 else (base, y - base)
            svg.rect(x0 + ci * bar_w, top, bar_w - 1, max(height, 0.5),
                     PALETTE[ci % len(PALETTE)])
        svg.text(margin_l + gi * group_w + group_w / 2, margin_t + plot_h + 12, graph,
                 size=9, anchor="end", rotate=-45.0)

    # Legend.
    lx = margin_l
    ly = svg.height - 18
    for ci, code in enumerate(codes):
        svg.rect(lx, ly - 9, 10, 10, PALETTE[ci % len(PALETTE)])
        svg.text(lx + 14, ly, code, size=10, anchor="start")
        lx += 14 + 7 * len(code) + 16
    svg.save(out_path)


def render_stacked_figure(csv_path: Path, title: str, out_path: Path) -> None:
    header, rows = read_csv(csv_path)
    kernels = header[1:]
    margin_l, margin_t, plot_h = 60, 60, 300
    group_w = 30
    plot_w = group_w * len(rows)
    svg = Svg(margin_l + plot_w + 170, margin_t + plot_h + 110)
    svg.text(margin_l + plot_w / 2, 25, title, size=14, bold=True)

    for pct in range(0, 101, 20):
        y = margin_t + plot_h * (1 - pct / 100)
        svg.line(margin_l, y, margin_l + plot_w, y, "#dddddd")
        svg.text(margin_l - 6, y + 4, f"{pct}%", size=10, anchor="end")

    for gi, row in enumerate(rows):
        x0 = margin_l + gi * group_w + 4
        acc = 0.0
        for ci, cell in enumerate(row[1:]):
            share = parse_cell(cell.rstrip("%")) or 0.0
            h = plot_h * share / 100
            y = margin_t + plot_h * (1 - acc / 100) - h
            svg.rect(x0, y, group_w - 8, h, PALETTE[ci % len(PALETTE)])
            acc += share
        svg.text(margin_l + gi * group_w + group_w / 2, margin_t + plot_h + 12, row[0],
                 size=9, anchor="end", rotate=-45.0)

    lx = margin_l + plot_w + 12
    for ci, kernel in enumerate(kernels):
        ly = margin_t + 16 * ci
        svg.rect(lx, ly, 10, 10, PALETTE[ci % len(PALETTE)])
        svg.text(lx + 14, ly + 9, kernel, size=10, anchor="start")
    svg.save(out_path)


def main(argv: list[str]) -> int:
    if len(argv) < 2:
        print(__doc__)
        return 2
    in_dir = Path(argv[1])
    out_dir = Path(argv[2]) if len(argv) > 2 else in_dir
    out_dir.mkdir(parents=True, exist_ok=True)

    rendered = 0
    for stem, title in RATIO_FIGURES.items():
        src = in_dir / f"{stem}.csv"
        if src.exists():
            render_ratio_figure(src, title, out_dir / f"{stem}.svg")
            rendered += 1
    for stem, title in STACKED_FIGURES.items():
        src = in_dir / f"{stem}.csv"
        if src.exists():
            render_stacked_figure(src, title, out_dir / f"{stem}.svg")
            rendered += 1
    print(f"rendered {rendered} figure(s) into {out_dir}")
    return 0 if rendered else 1


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
