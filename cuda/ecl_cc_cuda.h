// Public entry point of the real-GPU (CUDA) backend. Only available when
// the project is configured with -DECLCC_ENABLE_CUDA=ON.
#pragma once

#include <vector>

#include "graph/graph.h"

namespace ecl::cuda {

/// Connected-components labeling of `g` on the current CUDA device, using
/// the paper's five-kernel pipeline. Labels are component minima, identical
/// to ecl_cc_serial / ecl_cc_omp / gpusim::ecl_cc_gpu.
[[nodiscard]] std::vector<vertex_t> ecl_cc_cuda(const Graph& g);

}  // namespace ecl::cuda
