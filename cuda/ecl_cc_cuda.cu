// ECL-CC for real NVIDIA GPUs — the CUDA realization of the pipeline that
// src/gpusim/ecl_cc_gpu.cpp simulates, kernel for kernel (paper §3):
//
//   init_kernel      — Init3 seeding of the parent array;
//   compute1_kernel  — thread granularity, degree <= 16; larger vertices go
//                      to the double-sided worklist (mid-degree on top,
//                      high-degree on the bottom, two atomic cursors);
//   compute2_kernel  — warp granularity (lanes stride the adjacency list);
//   compute3_kernel  — thread-block granularity;
//   finalize_kernel  — single pointer jumping to flatten the labels.
//
// Built only when -DECLCC_ENABLE_CUDA=ON and a CUDA toolchain is present;
// this container has no GPU, so this backend is compiled and validated by
// users on real hardware (see cuda/README.md). The host-side graph types
// come from the main library.
#include <cuda_runtime.h>

#include <algorithm>
#include <cstdio>
#include <vector>

#include "cuda/ecl_cc_cuda.h"
#include "graph/graph.h"

namespace ecl::cuda {

namespace {

constexpr int kBlockSize = 256;
constexpr unsigned kThreadDegreeLimit = 16;
constexpr unsigned kWarpDegreeLimit = 352;

#define ECL_CUDA_CHECK(call)                                                  \
  do {                                                                        \
    const cudaError_t status = (call);                                        \
    if (status != cudaSuccess) {                                              \
      std::fprintf(stderr, "CUDA error %s at %s:%d\n",                        \
                   cudaGetErrorString(status), __FILE__, __LINE__);           \
      std::abort();                                                           \
    }                                                                         \
  } while (0)

/// Intermediate pointer jumping (paper Fig. 5), verbatim.
__device__ vertex_t find_repres(vertex_t v, vertex_t* const parent) {
  vertex_t par = parent[v];
  if (par != v) {
    vertex_t next, prev = v;
    while (par > (next = parent[par])) {
      parent[prev] = next;
      prev = par;
      par = next;
    }
  }
  return par;
}

/// Hooking (paper Fig. 6): CAS the larger representative under the smaller.
__device__ vertex_t hook(vertex_t v_rep, vertex_t u_rep, vertex_t* const parent) {
  bool repeat;
  do {
    repeat = false;
    if (v_rep != u_rep) {
      vertex_t ret;
      if (v_rep < u_rep) {
        if ((ret = atomicCAS(&parent[u_rep], u_rep, v_rep)) != u_rep) {
          u_rep = ret;
          repeat = true;
        }
      } else {
        if ((ret = atomicCAS(&parent[v_rep], v_rep, u_rep)) != v_rep) {
          v_rep = ret;
          repeat = true;
        }
      }
    }
  } while (repeat);
  return min(v_rep, u_rep);
}

__global__ void init_kernel(vertex_t n, const unsigned long long* __restrict__ offsets,
                            const vertex_t* __restrict__ adjacency, vertex_t* parent) {
  for (unsigned long long v = blockIdx.x * blockDim.x + threadIdx.x; v < n;
       v += gridDim.x * blockDim.x) {
    const unsigned long long beg = offsets[v];
    const unsigned long long end = offsets[v + 1];
    vertex_t label = static_cast<vertex_t>(v);
    for (unsigned long long e = beg; e < end; ++e) {  // Init3: first smaller
      const vertex_t u = adjacency[e];
      if (u < v) {
        label = u;
        break;
      }
    }
    parent[v] = label;
  }
}

__global__ void compute1_kernel(vertex_t n, const unsigned long long* __restrict__ offsets,
                                const vertex_t* __restrict__ adjacency, vertex_t* parent,
                                vertex_t* worklist, vertex_t* top_cursor,
                                vertex_t* bottom_cursor) {
  for (unsigned long long v = blockIdx.x * blockDim.x + threadIdx.x; v < n;
       v += gridDim.x * blockDim.x) {
    const unsigned long long beg = offsets[v];
    const unsigned long long end = offsets[v + 1];
    const unsigned degree = static_cast<unsigned>(end - beg);
    if (degree > kThreadDegreeLimit) {
      if (degree <= kWarpDegreeLimit) {
        worklist[atomicAdd(top_cursor, 1)] = static_cast<vertex_t>(v);
      } else {
        worklist[atomicSub(bottom_cursor, 1) - 1] = static_cast<vertex_t>(v);
      }
      continue;
    }
    vertex_t v_rep = find_repres(static_cast<vertex_t>(v), parent);
    for (unsigned long long e = beg; e < end; ++e) {
      const vertex_t u = adjacency[e];
      if (v > u) {
        v_rep = hook(v_rep, find_repres(u, parent), parent);
      }
    }
  }
}

__global__ void compute2_kernel(vertex_t num_mid, const vertex_t* __restrict__ worklist,
                                const unsigned long long* __restrict__ offsets,
                                const vertex_t* __restrict__ adjacency, vertex_t* parent) {
  const unsigned lane = threadIdx.x % warpSize;
  const unsigned long long warp_id =
      (blockIdx.x * blockDim.x + threadIdx.x) / warpSize;
  const unsigned long long num_warps = (gridDim.x * blockDim.x) / warpSize;
  for (unsigned long long w = warp_id; w < num_mid; w += num_warps) {
    const vertex_t v = worklist[w];
    const unsigned long long beg = offsets[v];
    const unsigned long long end = offsets[v + 1];
    vertex_t v_rep = find_repres(v, parent);
    for (unsigned long long e = beg + lane; e < end; e += warpSize) {
      const vertex_t u = adjacency[e];
      if (v > u) {
        v_rep = hook(v_rep, find_repres(u, parent), parent);
      }
    }
  }
}

__global__ void compute3_kernel(vertex_t num_high, vertex_t bottom,
                                const vertex_t* __restrict__ worklist,
                                const unsigned long long* __restrict__ offsets,
                                const vertex_t* __restrict__ adjacency, vertex_t* parent) {
  for (unsigned long long i = blockIdx.x; i < num_high; i += gridDim.x) {
    const vertex_t v = worklist[bottom + i];
    const unsigned long long beg = offsets[v];
    const unsigned long long end = offsets[v + 1];
    vertex_t v_rep = find_repres(v, parent);
    for (unsigned long long e = beg + threadIdx.x; e < end; e += blockDim.x) {
      const vertex_t u = adjacency[e];
      if (v > u) {
        v_rep = hook(v_rep, find_repres(u, parent), parent);
      }
    }
  }
}

__global__ void finalize_kernel(vertex_t n, vertex_t* parent) {
  for (unsigned long long v = blockIdx.x * blockDim.x + threadIdx.x; v < n;
       v += gridDim.x * blockDim.x) {
    vertex_t root = parent[v];
    vertex_t next;
    while (root > (next = parent[root])) root = next;  // Fini3: walk + write
    parent[v] = root;
  }
}

int grid_for(unsigned long long work, int device_blocks_cap) {
  const unsigned long long blocks = (work + kBlockSize - 1) / kBlockSize;
  return static_cast<int>(
      blocks < static_cast<unsigned long long>(device_blocks_cap) ? blocks
                                                                  : device_blocks_cap);
}

}  // namespace

/// Computes the connected-components labeling of `g` on the current CUDA
/// device. Matches ecl_cc_serial / ecl_cc_omp label-for-label (component
/// minima). Transfers are synchronous; kernel time can be measured by the
/// caller with CUDA events around this call minus the copies, matching the
/// paper's methodology (§4).
std::vector<vertex_t> ecl_cc_cuda(const Graph& g) {
  const vertex_t n = g.num_vertices();
  std::vector<vertex_t> labels(n);
  if (n == 0) return labels;

  int device = 0;
  cudaDeviceProp prop{};
  ECL_CUDA_CHECK(cudaGetDevice(&device));
  ECL_CUDA_CHECK(cudaGetDeviceProperties(&prop, device));
  const int blocks_cap = prop.multiProcessorCount * 32;

  unsigned long long* d_offsets = nullptr;
  vertex_t* d_adjacency = nullptr;
  vertex_t* d_parent = nullptr;
  vertex_t* d_worklist = nullptr;
  vertex_t* d_cursors = nullptr;  // [0] = top, [1] = bottom
  ECL_CUDA_CHECK(cudaMalloc(&d_offsets, (n + 1ULL) * sizeof(unsigned long long)));
  ECL_CUDA_CHECK(
      cudaMalloc(&d_adjacency, std::max<std::size_t>(1, g.num_edges()) * sizeof(vertex_t)));
  ECL_CUDA_CHECK(cudaMalloc(&d_parent, n * sizeof(vertex_t)));
  ECL_CUDA_CHECK(cudaMalloc(&d_worklist, n * sizeof(vertex_t)));
  ECL_CUDA_CHECK(cudaMalloc(&d_cursors, 2 * sizeof(vertex_t)));

  static_assert(sizeof(edge_t) == sizeof(unsigned long long));
  ECL_CUDA_CHECK(cudaMemcpy(d_offsets, g.offsets().data(),
                            (n + 1ULL) * sizeof(unsigned long long),
                            cudaMemcpyHostToDevice));
  ECL_CUDA_CHECK(cudaMemcpy(d_adjacency, g.adjacency().data(),
                            g.num_edges() * sizeof(vertex_t), cudaMemcpyHostToDevice));
  const vertex_t cursors_init[2] = {0, n};
  ECL_CUDA_CHECK(
      cudaMemcpy(d_cursors, cursors_init, sizeof(cursors_init), cudaMemcpyHostToDevice));

  init_kernel<<<grid_for(n, blocks_cap), kBlockSize>>>(n, d_offsets, d_adjacency, d_parent);
  compute1_kernel<<<grid_for(n, blocks_cap), kBlockSize>>>(
      n, d_offsets, d_adjacency, d_parent, d_worklist, &d_cursors[0], &d_cursors[1]);

  vertex_t cursors_host[2];
  ECL_CUDA_CHECK(
      cudaMemcpy(cursors_host, d_cursors, sizeof(cursors_host), cudaMemcpyDeviceToHost));
  const vertex_t num_mid = cursors_host[0];
  const vertex_t bottom = cursors_host[1];
  const vertex_t num_high = n - bottom;

  if (num_mid > 0) {
    const unsigned long long threads = static_cast<unsigned long long>(num_mid) * 32;
    compute2_kernel<<<grid_for(threads, blocks_cap), kBlockSize>>>(num_mid, d_worklist,
                                                                   d_offsets, d_adjacency,
                                                                   d_parent);
  }
  if (num_high > 0) {
    const int blocks =
        static_cast<int>(std::min<unsigned long long>(num_high, prop.multiProcessorCount * 8));
    compute3_kernel<<<blocks, kBlockSize>>>(num_high, bottom, d_worklist, d_offsets,
                                            d_adjacency, d_parent);
  }
  finalize_kernel<<<grid_for(n, blocks_cap), kBlockSize>>>(n, d_parent);
  ECL_CUDA_CHECK(cudaGetLastError());

  ECL_CUDA_CHECK(
      cudaMemcpy(labels.data(), d_parent, n * sizeof(vertex_t), cudaMemcpyDeviceToHost));
  ECL_CUDA_CHECK(cudaFree(d_offsets));
  ECL_CUDA_CHECK(cudaFree(d_adjacency));
  ECL_CUDA_CHECK(cudaFree(d_parent));
  ECL_CUDA_CHECK(cudaFree(d_worklist));
  ECL_CUDA_CHECK(cudaFree(d_cursors));
  return labels;
}

}  // namespace ecl::cuda
