// Standalone driver for the CUDA backend: loads a graph in any supported
// format, runs ECL-CC on the GPU, and verifies against the serial CPU code
// (the paper's validation protocol).
#include <cstdio>

#include "common/timer.h"
#include "core/ecl_cc.h"
#include "core/verify.h"
#include "cuda/ecl_cc_cuda.h"
#include "graph/io.h"

int main(int argc, char** argv) {
  using namespace ecl;
  if (argc != 2) {
    std::fprintf(stderr, "usage: ecl_cc_cuda <graph-file>\n");
    return 2;
  }
  const Graph g = load_auto(argv[1]);
  std::printf("loaded %s: %u vertices, %llu directed edges\n", argv[1], g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));

  Timer timer;
  const auto gpu_labels = cuda::ecl_cc_cuda(g);
  std::printf("GPU time (incl. transfers): %.3f ms\n", timer.millis());

  const auto cpu_labels = ecl_cc_serial(g);
  std::printf("components: %u\n", count_labels(gpu_labels));
  std::printf("verification vs serial CPU: %s\n",
              gpu_labels == cpu_labels ? "ok" : "MISMATCH");
  return gpu_labels == cpu_labels ? 0 : 1;
}
