// Runs the full five-kernel ECL-CC GPU pipeline on the virtual device and
// prints per-kernel statistics — a window into the paper's §3 GPU design
// (double-sided worklist, three compute granularities) and §5.1 analysis.
//
//   $ ./gpu_pipeline [--graph=<suite name>] [--scale=F] [--device=titanx|k40]
#include <cstdio>

#include "common/cli.h"
#include "core/verify.h"
#include "graph/stats.h"
#include "graph/suite.h"
#include "gpusim/gpu_cc.h"

int main(int argc, char** argv) {
  using namespace ecl;
  CliArgs args(argc, argv);
  const std::string graph_name = args.get("graph", "kron_g500-logn21");
  const double scale = args.get_double("scale", 0.5);
  const std::string device = args.get("device", "titanx");

  const Graph g = make_suite_graph(graph_name, scale);
  const auto spec = device == "k40" ? gpusim::k40_like() : gpusim::titanx_like();
  std::printf("graph: %s (scale %.2f) — %u vertices, %llu directed edges\n",
              graph_name.c_str(), scale, g.num_vertices(),
              static_cast<unsigned long long>(g.num_edges()));
  std::printf("device: %s\n\n", spec.name.c_str());

  const auto result = gpusim::ecl_cc_gpu(g, spec);

  std::printf("%-16s %8s %8s %12s %12s %10s\n", "kernel", "blocks", "threads", "cycles",
              "L2 reads", "time (ms)");
  for (const auto& k : result.kernels) {
    std::printf("%-16s %8u %8u %12llu %12llu %10.4f\n", k.name.c_str(), k.num_blocks,
                k.block_size, static_cast<unsigned long long>(k.max_sm_cycles),
                static_cast<unsigned long long>(k.memory.l2_reads), k.time_ms);
  }
  std::printf("\ntotal modeled time: %.4f ms\n", result.time_ms);
  std::printf("kernel time distribution:\n");
  for (const auto& [name, ms] : result.time_by_kernel) {
    std::printf("  %-16s %5.1f%%\n", name.c_str(), 100.0 * ms / result.time_ms);
  }
  std::printf("\nL1 hit rate: %.1f%%   L2 reads: %llu   L2 writes: %llu   DRAM: %llu\n",
              100.0 * static_cast<double>(result.memory.l1_hits) /
                  static_cast<double>(result.memory.reads + result.memory.writes),
              static_cast<unsigned long long>(result.memory.l2_reads),
              static_cast<unsigned long long>(result.memory.l2_writes),
              static_cast<unsigned long long>(result.memory.dram_accesses));

  const bool ok = same_partition(result.labels, reference_components(g));
  std::printf("components: %u, verification: %s\n", count_labels(result.labels),
              ok ? "ok" : "FAILED");
  return ok ? 0 : 1;
}
