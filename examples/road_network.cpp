// Island detection in a road network — the paper's own illustration ("the
// road network of an island without bridges to it forms a connected
// component").
//
//   $ ./road_network [--vertices=N] [--islands=N] [--seed=N] [--file=path]
//
// Generates a road map made of a mainland plus several islands (or loads a
// real one from --file in any supported format), labels the components with
// ECL-CC, and answers reachability queries.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "core/ecl_cc.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/io.h"

namespace {

using namespace ecl;

/// Splices `part` into `builder` with vertex IDs offset by `base`.
void splice(GraphBuilder& builder, const Graph& part, vertex_t base) {
  for (vertex_t v = 0; v < part.num_vertices(); ++v) {
    for (const vertex_t u : part.neighbors(v)) {
      if (u < v) builder.add_edge(base + v, base + u);
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ecl;
  CliArgs args(argc, argv);
  const std::string file = args.get("file", "");
  const auto total = static_cast<vertex_t>(args.get_int("vertices", 200000));
  const auto islands = static_cast<vertex_t>(args.get_int("islands", 4));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 11));

  Graph map;
  if (!file.empty()) {
    map = load_auto(file);  // DIMACS .gr, SNAP edge list, .mtx, or .eclg
    std::printf("loaded %s: %u vertices, %llu directed edges\n", file.c_str(),
                map.num_vertices(), static_cast<unsigned long long>(map.num_edges()));
  } else {
    // Mainland takes ~70% of the vertices; the rest are islands.
    const vertex_t mainland_n = total * 7 / 10;
    const vertex_t island_n = islands > 0 ? (total - mainland_n) / islands : 0;
    GraphBuilder builder(total);
    const Graph mainland = gen_road_network(mainland_n, seed);
    splice(builder, mainland, 0);
    for (vertex_t i = 0; i < islands; ++i) {
      const Graph island = gen_road_network(island_n, seed + 1 + i);
      splice(builder, island, mainland_n + i * island_n);
    }
    map = builder.build();
    std::printf("generated road map: %u junctions, %llu road segments, %u island(s)\n",
                map.num_vertices(), static_cast<unsigned long long>(map.num_edges() / 2),
                islands);
  }

  const std::vector<vertex_t> region = ecl_cc_omp(map);

  // Region census.
  std::map<vertex_t, vertex_t> region_size;
  for (vertex_t v = 0; v < map.num_vertices(); ++v) ++region_size[region[v]];
  std::vector<std::pair<vertex_t, vertex_t>> regions(region_size.begin(), region_size.end());
  std::sort(regions.begin(), regions.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::printf("drivable regions: %zu\n", regions.size());
  for (std::size_t i = 0; i < std::min<std::size_t>(6, regions.size()); ++i) {
    std::printf("  region %zu: %u junction(s)\n", i + 1, regions[i].second);
  }

  // Reachability queries: same label <=> a route exists.
  Xoshiro256 rng(seed);
  std::printf("sample reachability queries:\n");
  for (int q = 0; q < 5; ++q) {
    const auto a = static_cast<vertex_t>(rng.bounded(map.num_vertices()));
    const auto b = static_cast<vertex_t>(rng.bounded(map.num_vertices()));
    std::printf("  junction %7u -> junction %7u : %s\n", a, b,
                region[a] == region[b] ? "route exists" : "unreachable (different island)");
  }
  return 0;
}
