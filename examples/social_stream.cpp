// Streaming connectivity on a growing social network, driven through the
// ecl::svc ConnectivityService in-process: friendship batches are submitted
// through the bounded admission queue (retrying on backpressure shed), a
// background thread compacts epoch snapshots by running the batch ECL-CC
// engine, and queries are answered in both read modes — the epoch snapshot
// (stale but canonical) and the live union-find (fresh).
//
//   $ ./social_stream [--users=N] [--batches=N] [--seed=N]
//
// Friendships arrive in batches; after each batch the example reports how
// the community structure consolidates (number of communities, share of
// users in the giant component) and answers connectivity queries without
// ever recomputing from scratch.
#include <algorithm>
#include <cstdio>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "graph/generators.h"
#include "svc/service.h"

int main(int argc, char** argv) {
  using namespace ecl;
  CliArgs args(argc, argv);
  const auto users = static_cast<vertex_t>(args.get_int("users", 100000));
  const auto batches = static_cast<int>(args.get_int("batches", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  // Generate a friendship network and replay its edges as a stream in
  // arrival (vertex-creation) order.
  const Graph network = gen_preferential_attachment(users, 5, seed);
  std::vector<Edge> stream;
  stream.reserve(network.num_edges() / 2);
  for (vertex_t v = 0; v < users; ++v) {
    for (const vertex_t u : network.neighbors(v)) {
      if (u < v) stream.emplace_back(v, u);
    }
  }
  std::sort(stream.begin(), stream.end());  // arrival order: by newer user

  svc::ServiceOptions opts;
  opts.queue_capacity = 32;
  opts.compact_interval_ms = 10;
  svc::ConnectivityService service(users, opts);
  Xoshiro256 rng(seed);
  const std::size_t batch_size = (stream.size() + batches - 1) / batches;

  std::printf("streaming %zu friendships over %d batches into a %u-user network\n\n",
              stream.size(), batches, users);
  std::printf("%8s %14s %12s %14s %16s\n", "batch", "edges so far", "epoch",
              "communities", "giant component");

  std::size_t consumed = 0;
  std::uint64_t sheds = 0;
  for (int b = 0; b < batches; ++b) {
    const std::size_t end = std::min(stream.size(), consumed + batch_size);
    // Submit in service-sized chunks; a shed is backpressure, not an error —
    // retry after yielding to the ingest worker.
    constexpr std::size_t kChunk = 4096;
    while (consumed < end) {
      const std::size_t n = std::min(kChunk, end - consumed);
      svc::ConnectivityService::EdgeBatch chunk(stream.begin() + consumed,
                                                stream.begin() + consumed + n);
      while (service.submit(chunk) == svc::Admission::kShed) {
        ++sheds;
        std::this_thread::yield();
      }
      consumed += n;
    }

    // Force an epoch covering everything submitted so far, then census the
    // snapshot's canonical labels.
    service.compact_now();
    const svc::SnapshotPtr snap = service.snapshot();
    std::unordered_map<vertex_t, vertex_t> sizes;
    for (const vertex_t l : snap->labels) ++sizes[l];
    vertex_t giant = 0;
    for (const auto& [label, size] : sizes) giant = std::max(giant, size);
    std::printf("%8d %14zu %12llu %14zu %14.1f%%\n", b + 1, consumed,
                static_cast<unsigned long long>(snap->epoch), sizes.size(),
                100.0 * static_cast<double>(giant) / static_cast<double>(users));
  }

  std::printf("\nlive connectivity queries (snapshot vs fresh, no recomputation):\n");
  for (int q = 0; q < 5; ++q) {
    const auto a = static_cast<vertex_t>(rng.bounded(users));
    const auto b = static_cast<vertex_t>(rng.bounded(users));
    const bool snap_conn = service.connected(a, b, svc::ReadMode::kSnapshot);
    const bool fresh_conn = service.connected(a, b, svc::ReadMode::kFresh);
    std::printf("  user %6u and user %6u: %s (snapshot), %s (fresh)\n", a, b,
                snap_conn ? "connected" : "apart", fresh_conn ? "connected" : "apart");
  }

  const auto stats = service.stats();
  std::printf("\nservice: %llu batches accepted, %llu shed-retries, epoch %llu, "
              "%u communities\n",
              static_cast<unsigned long long>(stats.accepted_batches),
              static_cast<unsigned long long>(sheds),
              static_cast<unsigned long long>(stats.epoch), stats.num_components);
  service.stop();
  return 0;
}
