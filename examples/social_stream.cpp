// Streaming connectivity on a growing social network, using the
// IncrementalCC extension (insert-only dynamic connectivity on the ECL
// lock-free union-find).
//
//   $ ./social_stream [--users=N] [--batches=N] [--seed=N]
//
// Friendships arrive in batches; after each batch the example reports how
// the community structure consolidates (number of communities, share of
// users in the giant component) and answers connectivity queries without
// ever recomputing from scratch.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "core/incremental.h"
#include "graph/generators.h"

int main(int argc, char** argv) {
  using namespace ecl;
  CliArgs args(argc, argv);
  const auto users = static_cast<vertex_t>(args.get_int("users", 100000));
  const auto batches = static_cast<int>(args.get_int("batches", 8));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 3));

  // Generate a friendship network and replay its edges as a stream in
  // arrival (vertex-creation) order.
  const Graph network = gen_preferential_attachment(users, 5, seed);
  std::vector<std::pair<vertex_t, vertex_t>> stream;
  stream.reserve(network.num_edges() / 2);
  for (vertex_t v = 0; v < users; ++v) {
    for (const vertex_t u : network.neighbors(v)) {
      if (u < v) stream.emplace_back(v, u);
    }
  }
  std::sort(stream.begin(), stream.end());  // arrival order: by newer user

  IncrementalCC cc(users);
  Xoshiro256 rng(seed);
  const std::size_t batch_size = (stream.size() + batches - 1) / batches;

  std::printf("streaming %zu friendships over %d batches into a %u-user network\n\n",
              stream.size(), batches, users);
  std::printf("%8s %14s %14s %16s\n", "batch", "edges so far", "communities",
              "giant component");

  std::size_t consumed = 0;
  for (int b = 0; b < batches; ++b) {
    const std::size_t end = std::min(stream.size(), consumed + batch_size);
    for (; consumed < end; ++consumed) {
      cc.add_edge(stream[consumed].first, stream[consumed].second);
    }

    // Community census for this point in time.
    auto labels = cc.labels();
    std::map<vertex_t, vertex_t> sizes;
    for (const vertex_t l : labels) ++sizes[l];
    vertex_t giant = 0;
    for (const auto& [label, size] : sizes) giant = std::max(giant, size);
    std::printf("%8d %14zu %14zu %14.1f%%\n", b + 1, consumed, sizes.size(),
                100.0 * static_cast<double>(giant) / static_cast<double>(users));
  }

  std::printf("\nlive connectivity queries (no recomputation):\n");
  for (int q = 0; q < 5; ++q) {
    const auto a = static_cast<vertex_t>(rng.bounded(users));
    const auto b = static_cast<vertex_t>(rng.bounded(users));
    std::printf("  user %6u and user %6u: %s\n", a, b,
                cc.connected(a, b) ? "connected through friends" : "no connection");
  }
  return 0;
}
