// Protein-complex detection in a protein-protein-interaction (PPI) network —
// the biochemistry use case from the paper's introduction ("interacting
// proteins are connected in the PPI network").
//
//   $ ./drug_discovery [--proteins=N] [--seed=N]
//
// Generates a synthetic PPI network (dense complexes plus sparse transient
// interactions), finds the interaction components with ECL-CC, and reports
// the complexes a screening pipeline would prioritize.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "core/ecl_cc.h"
#include "core/verify.h"
#include "graph/builder.h"

int main(int argc, char** argv) {
  using namespace ecl;
  CliArgs args(argc, argv);
  const auto n = static_cast<vertex_t>(args.get_int("proteins", 20000));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 7));

  Xoshiro256 rng(seed);
  GraphBuilder builder(n);

  // Protein complexes: runs of 3-20 proteins with dense pairwise binding.
  vertex_t v = 0;
  vertex_t num_complex_proteins = 0;
  while (v + 3 < n) {
    const auto size = static_cast<vertex_t>(3 + rng.bounded(18));
    const vertex_t end = std::min<vertex_t>(n, v + size);
    for (vertex_t a = v; a < end; ++a) {
      for (vertex_t b = a + 1; b < end; ++b) {
        if (rng.uniform() < 0.6) builder.add_edge(a, b);
      }
    }
    num_complex_proteins += end - v;
    v = end;
    // Leave gaps: proteins with no stable interactions.
    v += static_cast<vertex_t>(rng.bounded(4));
  }
  // Sparse transient interactions occasionally bridge complexes.
  const vertex_t num_transient = n / 50;
  for (vertex_t i = 0; i < num_transient; ++i) {
    const auto a = static_cast<vertex_t>(rng.bounded(n));
    const auto b = static_cast<vertex_t>(rng.bounded(n));
    if (a != b) builder.add_edge(a, b);
  }
  const Graph ppi = builder.build();

  // Interaction components = candidate functional modules.
  const std::vector<vertex_t> labels = ecl_cc_omp(ppi);

  std::map<vertex_t, vertex_t> module_size;
  for (vertex_t p = 0; p < n; ++p) ++module_size[labels[p]];

  std::vector<std::pair<vertex_t, vertex_t>> modules(module_size.begin(), module_size.end());
  std::sort(modules.begin(), modules.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });

  vertex_t singletons = 0;
  for (const auto& [label, size] : modules) {
    if (size == 1) ++singletons;
  }

  std::printf("PPI network: %u proteins, %llu interactions, %u in complexes\n", n,
              static_cast<unsigned long long>(ppi.num_edges() / 2), num_complex_proteins);
  std::printf("interaction modules found: %zu (%u isolated proteins)\n", modules.size(),
              singletons);
  std::printf("largest candidate modules for screening:\n");
  for (std::size_t i = 0; i < std::min<std::size_t>(10, modules.size()); ++i) {
    if (modules[i].second < 2) break;
    std::printf("  module rooted at protein %6u: %5u protein(s)\n", modules[i].first,
                modules[i].second);
  }

  const auto check = verify_labels(ppi, labels);
  std::printf("verification: %s\n", check.ok ? "ok" : check.reason.c_str());
  return check.ok ? 0 : 1;
}
