// Connected-component labeling of a bitmap — the computer-vision use case
// from the paper's introduction ("in computer vision, it is used for object
// detection; the pixels of an object are typically connected").
//
//   $ ./image_segmentation [--width=N] [--height=N] [--seed=N]
//
// Generates a synthetic binary image of random blobs, builds the
// 4-connectivity pixel graph over the foreground, labels its components
// with ECL-CC, and prints the segmented image plus per-object statistics.
#include <algorithm>
#include <cstdio>
#include <map>
#include <vector>

#include "common/cli.h"
#include "common/rng.h"
#include "core/ecl_cc.h"
#include "graph/builder.h"

int main(int argc, char** argv) {
  using namespace ecl;
  CliArgs args(argc, argv);
  const auto width = static_cast<vertex_t>(args.get_int("width", 72));
  const auto height = static_cast<vertex_t>(args.get_int("height", 24));
  const auto seed = static_cast<std::uint64_t>(args.get_int("seed", 42));

  // Paint random blobs onto a binary image.
  std::vector<std::uint8_t> image(static_cast<std::size_t>(width) * height, 0);
  Xoshiro256 rng(seed);
  const int num_blobs = 8;
  for (int b = 0; b < num_blobs; ++b) {
    const auto cx = static_cast<long>(rng.bounded(width));
    const auto cy = static_cast<long>(rng.bounded(height));
    const long r = 2 + static_cast<long>(rng.bounded(5));
    for (long y = std::max(0L, cy - r); y <= std::min<long>(height - 1, cy + r); ++y) {
      for (long x = std::max(0L, cx - r); x <= std::min<long>(width - 1, cx + r); ++x) {
        if ((x - cx) * (x - cx) + (y - cy) * (y - cy) <= r * r) {
          image[static_cast<std::size_t>(y) * width + x] = 1;
        }
      }
    }
  }

  // Build the 4-connectivity graph over foreground pixels.
  const vertex_t n = width * height;
  GraphBuilder builder(n);
  auto at = [&](vertex_t x, vertex_t y) { return y * width + x; };
  for (vertex_t y = 0; y < height; ++y) {
    for (vertex_t x = 0; x < width; ++x) {
      if (!image[at(x, y)]) continue;
      if (x + 1 < width && image[at(x + 1, y)]) builder.add_edge(at(x, y), at(x + 1, y));
      if (y + 1 < height && image[at(x, y + 1)]) builder.add_edge(at(x, y), at(x, y + 1));
    }
  }
  const Graph g = builder.build();

  // Label the connected components.
  const std::vector<vertex_t> labels = ecl_cc_omp(g);

  // Collect the foreground objects (skip background/isolated pixels).
  std::map<vertex_t, vertex_t> object_sizes;
  for (vertex_t p = 0; p < n; ++p) {
    if (image[p]) ++object_sizes[labels[p]];
  }
  std::map<vertex_t, char> glyph;
  char next = 'A';
  for (const auto& [label, size] : object_sizes) {
    glyph[label] = next;
    next = next == 'Z' ? 'A' : static_cast<char>(next + 1);
  }

  for (vertex_t y = 0; y < height; ++y) {
    for (vertex_t x = 0; x < width; ++x) {
      std::putchar(image[at(x, y)] ? glyph[labels[at(x, y)]] : '.');
    }
    std::putchar('\n');
  }
  std::printf("\n%zu object(s) detected:\n", object_sizes.size());
  for (const auto& [label, size] : object_sizes) {
    std::printf("  object %c: %u pixel(s)\n", glyph[label], size);
  }
  return 0;
}
