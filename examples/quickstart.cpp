// Quickstart: build a small graph, run ECL-CC, inspect the components.
//
//   $ ./quickstart
//
// Shows the three public entry points most users need: GraphBuilder,
// ecl_cc_serial / ecl_cc_omp, and the verification helpers.
#include <cstdio>

#include "core/ecl_cc.h"
#include "core/verify.h"
#include "graph/builder.h"

int main() {
  using namespace ecl;

  // A graph with three components:
  //   a triangle {0,1,2}, a path {3,4,5}, and the isolated vertex {6}.
  GraphBuilder builder(7);
  builder.add_edge(0, 1);
  builder.add_edge(1, 2);
  builder.add_edge(2, 0);
  builder.add_edge(3, 4);
  builder.add_edge(4, 5);
  const Graph g = builder.build();  // symmetrizes, dedupes, drops self-loops

  // Serial ECL-CC. Each vertex is labeled with the smallest vertex ID of
  // its component.
  const std::vector<vertex_t> labels = ecl_cc_serial(g);
  std::printf("vertex : component\n");
  for (vertex_t v = 0; v < g.num_vertices(); ++v) {
    std::printf("   %u   :    %u\n", v, labels[v]);
  }
  std::printf("components: %u\n", count_labels(labels));

  // The OpenMP variant computes the same labeling in parallel.
  const std::vector<vertex_t> parallel_labels = ecl_cc_omp(g);
  std::printf("parallel run agrees: %s\n",
              labels == parallel_labels ? "yes" : "no");

  // verify_labels checks the structural invariants against the graph.
  const auto check = verify_labels(g, labels);
  std::printf("verification: %s\n", check.ok ? "ok" : check.reason.c_str());
  return check.ok ? 0 : 1;
}
